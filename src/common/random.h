// Random number machinery: a fast PRNG plus the YCSB key-chooser
// distributions (uniform, zipfian, scrambled zipfian, latest).
//
// The zipfian generator follows Gray et al., "Quickly Generating
// Billion-Record Synthetic Databases" (SIGMOD '94) — the same algorithm YCSB
// uses — so the skew parameter `s` in our benches means the same thing as the
// paper's YCSB `s` (they sweep 0.5..1.22 in Fig 12; YCSB default is 0.99).
#pragma once

#include <cstdint>
#include <cmath>

#include "common/hash.h"

namespace hdnh {

// xoshiro256** — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0xDEADBEEFCAFEBABEULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9E3779B97F4A7C15ULL;
      si = mix64(x);
    }
  }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Bound must be > 0.
  uint64_t next_below(uint64_t bound) { return next() % bound; }

  // Uniform double in [0, 1).
  double next_double() { return (next() >> 11) * 0x1.0p-53; }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

// Chooses keys in [0, n) with a given distribution. Subclasses are NOT
// thread-safe; benches give each thread its own instance.
class KeyChooser {
 public:
  virtual ~KeyChooser() = default;
  // Returns the next chosen key index in [0, n).
  virtual uint64_t next() = 0;
};

// Uniform over [0, n).
class UniformChooser final : public KeyChooser {
 public:
  UniformChooser(uint64_t n, uint64_t seed) : n_(n), rng_(seed) {}
  uint64_t next() override { return rng_.next_below(n_); }

 private:
  uint64_t n_;
  Rng rng_;
};

// Zipfian over [0, n) with exponent `theta` (YCSB's `s`). Item 0 is the
// most popular. Gray et al. constant-time algorithm after O(n)-free setup
// (we use the closed-form zeta approximation YCSB uses for large n).
class ZipfianChooser : public KeyChooser {
 public:
  ZipfianChooser(uint64_t n, double theta, uint64_t seed);
  uint64_t next() override;

  double theta() const { return theta_; }

 protected:
  uint64_t n_;
  double theta_;
  double alpha_, zetan_, eta_, zeta2theta_;
  Rng rng_;

  static double zeta_static(uint64_t n, double theta);
};

// Zipfian with the popular items scattered across the keyspace (YCSB's
// ScrambledZipfian) — popularity skew without spatial locality, which is the
// honest way to exercise a hash table's hot-set behaviour.
class ScrambledZipfianChooser final : public ZipfianChooser {
 public:
  ScrambledZipfianChooser(uint64_t n, double theta, uint64_t seed)
      : ZipfianChooser(n, theta, seed) {}
  uint64_t next() override { return mix64(ZipfianChooser::next()) % n_; }
};

// YCSB "latest": skewed toward the most recently inserted keys. The caller
// advances `max` as inserts happen.
class LatestChooser final : public KeyChooser {
 public:
  LatestChooser(uint64_t n, double theta, uint64_t seed)
      : zipf_(n, theta, seed), max_(n) {}
  void set_max(uint64_t m) { max_ = m; }
  uint64_t next() override {
    uint64_t off = zipf_.next();
    return off >= max_ ? max_ - 1 : max_ - 1 - off;
  }

 private:
  ZipfianChooser zipf_;
  uint64_t max_;
};

}  // namespace hdnh
