#include "common/random.h"

namespace hdnh {

namespace {
// Exact zeta for small n, Euler–Maclaurin style approximation for large n —
// matches YCSB's behaviour closely enough for workload generation.
double zeta_approx(uint64_t n, double theta) {
  constexpr uint64_t kExactLimit = 1'000'000;
  if (n <= kExactLimit) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
  }
  double sum = 0;
  for (uint64_t i = 1; i <= kExactLimit; ++i)
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  // integral of x^-theta from kExactLimit to n
  if (theta == 1.0) {
    sum += std::log(static_cast<double>(n) / kExactLimit);
  } else {
    sum += (std::pow(static_cast<double>(n), 1 - theta) -
            std::pow(static_cast<double>(kExactLimit), 1 - theta)) /
           (1 - theta);
  }
  return sum;
}
}  // namespace

double ZipfianChooser::zeta_static(uint64_t n, double theta) {
  return zeta_approx(n, theta);
}

ZipfianChooser::ZipfianChooser(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  zetan_ = zeta_static(n, theta);
  zeta2theta_ = zeta_static(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1 - std::pow(2.0 / static_cast<double>(n), 1 - theta)) /
         (1 - zeta2theta_ / zetan_);
}

uint64_t ZipfianChooser::next() {
  double u = rng_.next_double();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace hdnh
