#include "common/threads.h"

#include <pthread.h>
#include <sched.h>

namespace hdnh {

bool pin_to_core(uint32_t core) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core % std::thread::hardware_concurrency(), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

void parallel_for(uint64_t n, uint32_t workers,
                  const std::function<void(uint32_t, uint64_t, uint64_t)>& fn) {
  if (workers <= 1 || n == 0) {
    fn(0, 0, n);
    return;
  }
  const uint64_t chunk = (n + workers - 1) / workers;
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (uint32_t w = 1; w < workers; ++w) {
    const uint64_t begin = std::min(n, w * chunk);
    const uint64_t end = std::min(n, begin + chunk);
    threads.emplace_back([&fn, w, begin, end] { fn(w, begin, end); });
  }
  fn(0, 0, std::min(n, chunk));
  for (auto& t : threads) t.join();
}

}  // namespace hdnh
