#include "common/hash.h"

namespace hdnh {

uint64_t hash64(const void* data, size_t len, uint64_t seed) {
  using namespace detail;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint8_t* end = p + len;
  uint64_t h;

  if (len >= 32) {
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    const uint8_t* limit = end - 32;
    do {
      v1 = round64(v1, read64(p));
      v2 = round64(v2, read64(p + 8));
      v3 = round64(v3, read64(p + 16));
      v4 = round64(v4, read64(p + 24));
      p += 32;
    } while (p <= limit);
    h = rotl(v1, 1) + rotl(v2, 7) + rotl(v3, 12) + rotl(v4, 18);
    h = merge_round(h, v1);
    h = merge_round(h, v2);
    h = merge_round(h, v3);
    h = merge_round(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<uint64_t>(len);

  while (p + 8 <= end) {
    h ^= round64(0, read64(p));
    h = rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(read32(p)) * kPrime1;
    h = rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= (*p) * kPrime5;
    h = rotl(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}


namespace {

// Slicing-by-4 CRC-32C tables, generated once at first use. Polynomial
// 0x1EDC6F41 reflected = 0x82F63B78.
struct Crc32cTables {
  uint32_t t[4][256];
  Crc32cTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (c >> 1) ^ 0x82F63B78u : c >> 1;
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFF];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFF];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFF];
    }
  }
};

}  // namespace

uint32_t crc32c(const void* data, size_t len, uint32_t seed) {
  static const Crc32cTables tables;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = ~seed;
  while (len >= 4) {
    uint32_t w;
    std::memcpy(&w, p, 4);
    c ^= w;
    c = tables.t[3][c & 0xFF] ^ tables.t[2][(c >> 8) & 0xFF] ^
        tables.t[1][(c >> 16) & 0xFF] ^ tables.t[0][c >> 24];
    p += 4;
    len -= 4;
  }
  while (len--) {
    c = (c >> 8) ^ tables.t[0][(c ^ *p++) & 0xFF];
  }
  return ~c;
}

}  // namespace hdnh
