// Time helpers: monotonic nanoseconds and a calibrated spin-wait used by the
// NVM latency model (sleeping is far too coarse for ~100 ns scale delays).
#pragma once

#include <chrono>
#include <cstdint>

namespace hdnh {

inline uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Busy-wait for approximately `ns` nanoseconds. Used to emulate NVM media
// latency; accuracy within a few tens of ns is plenty for the model.
inline void spin_for_ns(uint64_t ns) {
  if (ns == 0) return;
  const uint64_t deadline = now_ns() + ns;
  while (now_ns() < deadline) {
#if defined(__x86_64__)
    __builtin_ia32_pause();
#endif
  }
}

// Simple scope timer: reports elapsed nanoseconds.
class ScopeTimer {
 public:
  ScopeTimer() : start_(now_ns()) {}
  uint64_t elapsed_ns() const { return now_ns() - start_; }
  double elapsed_ms() const { return static_cast<double>(elapsed_ns()) / 1e6; }
  double elapsed_s() const { return static_cast<double>(elapsed_ns()) / 1e9; }
  void reset() { start_ = now_ns(); }

 private:
  uint64_t start_;
};

}  // namespace hdnh
