// Persistent (NVM-resident) layout of HDNH's non-volatile table.
//
// A bucket is exactly 256 bytes — the AEP media block size — holding an
// 8-byte header (whose first byte is the persisted `bitmap`: one validity
// bit per slot) and eight packed 31-byte records. Locating a record never
// needs more than one media block per probed bucket.
//
// The superblock (allocator root slot 0) carries the two level pointers and
// the resize state machine of §3.7: `level_number` 0 = steady, 2 = resize
// started (new level may or may not exist yet), 3 = rehashing with
// `rehash_progress` persisted per drained bucket. `prev_*` snapshots make
// the pointer swap replayable from any crash point.
//
// A small array of update-log entries (root slot 1) makes the cross-bucket
// update path failure-atomic: the paper's single-atomic-bitmap-write trick
// only works when old and new slot share a bucket; when they do not, we arm
// a log entry so recovery can finish flipping both validity bits.
#pragma once

#include <atomic>
#include <cstdint>

#include "api/types.h"

namespace hdnh {

inline constexpr uint32_t kNvSlots = 8;          // slots per NVT bucket
inline constexpr uint64_t kNvBucketBytes = 256;  // == nvm::kNvmBlock

#pragma pack(push, 1)
struct NvBucket {
  std::atomic<uint8_t> bitmap;  // bit i == slot i holds a valid record
  uint8_t reserved[7];
  KVPair slots[kNvSlots];
};
#pragma pack(pop)
static_assert(sizeof(NvBucket) == kNvBucketBytes, "bucket must be one AEP block");

struct HdnhSuper {
  static constexpr uint64_t kMagic = 0x48444E485F535550ULL;  // "HDNH_SUP"

  uint64_t magic;
  uint64_t buckets_per_seg;

  // Steady-state levels: [0] = top (2M segments), [1] = bottom (M segments).
  uint64_t level_off[2];
  uint64_t level_segs[2];

  // Resize state machine (§3.7).
  std::atomic<uint32_t> level_number;  // 0 steady / 2 starting / 3 rehashing
  uint32_t resizing_flag;
  uint64_t prev_tl_off, prev_tl_segs;  // levels as of resize start
  uint64_t prev_bl_off, prev_bl_segs;
  uint64_t new_level_off, new_level_segs;   // freshly allocated level
  std::atomic<uint64_t> rehash_progress;    // old-BL buckets fully drained

  // Clean-shutdown bookkeeping.
  uint32_t clean_shutdown;
  uint64_t clean_item_count;
};

struct UpdateLogEntry {
  // state: 0 = idle, 1 = armed (fields below are valid and must be replayed).
  std::atomic<uint64_t> state;
  Key key;
  uint64_t old_level_off;
  uint64_t new_level_off;
  uint64_t old_bucket;
  uint64_t new_bucket;
  uint32_t old_slot;
  uint32_t new_slot;
  uint8_t pad[64];  // two full cachelines; entries never share a line
};
static_assert(sizeof(UpdateLogEntry) == 128);
inline constexpr uint32_t kUpdateLogSlots = 64;

// ---- OCF entry encoding (§3.2) ------------------------------------------
//
// One 16-bit DRAM word per NVT slot: [valid:1][busy(opmap):1][version:6]
// [fingerprint:8] — the paper's "an OCF entry only occupies 2 bytes".
namespace ocf {
inline constexpr uint16_t kValid = 0x8000;
inline constexpr uint16_t kBusy = 0x4000;
inline constexpr uint16_t kVerMask = 0x3F00;
inline constexpr uint16_t kVerInc = 0x0100;
inline constexpr uint16_t kFpMask = 0x00FF;

inline uint16_t fp_of(uint16_t e) { return e & kFpMask; }
inline bool valid(uint16_t e) { return e & kValid; }
inline bool busy(uint16_t e) { return e & kBusy; }
inline uint16_t bump_ver(uint16_t e) {
  return static_cast<uint16_t>((e & ~kVerMask) | ((e + kVerInc) & kVerMask));
}
// Compose a released entry: given previous entry (for its version), a new
// validity and fingerprint, clear busy and advance the version.
inline uint16_t release(uint16_t prev, bool valid_bit, uint8_t fp) {
  uint16_t v = static_cast<uint16_t>((prev + kVerInc) & kVerMask);
  return static_cast<uint16_t>((valid_bit ? kValid : 0) | v | fp);
}
}  // namespace ocf

}  // namespace hdnh
