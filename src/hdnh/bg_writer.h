// Synchronous write mechanism (§3.4).
//
// Every HDNH write is logically performed by two threads: the foreground
// thread does the durable work (non-volatile table + OCF) while a
// background thread mirrors the change into the DRAM hot table. The two
// rendezvous on a `sync_write_signal`: the foreground submits the request
// (signal = incomplete), finishes its NVM work, then waits for the
// background thread to mark the signal complete before returning.
//
// Requests are routed to a fixed worker by key hash, so operations on the
// same key always execute on the same queue in submission order.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "api/types.h"
#include "hdnh/hot_table.h"

namespace hdnh {

// The paper's sync_write_signal. `wait()` spins briefly then yields, which
// behaves well both when background threads have their own cores and when
// they are timeshared.
class SyncWriteSignal {
 public:
  void complete() { done_.store(true, std::memory_order_release); }
  void wait() const {
    for (int spins = 0; !done_.load(std::memory_order_acquire); ++spins) {
      if (spins < 1024) {
#if defined(__x86_64__)
        __builtin_ia32_pause();
#endif
      } else {
        std::this_thread::yield();
      }
    }
  }

 private:
  std::atomic<bool> done_{false};
};

class BgWriter {
 public:
  enum class Op : uint8_t { kPut, kErase };

  BgWriter(HotTable* hot, uint32_t workers);
  ~BgWriter();

  BgWriter(const BgWriter&) = delete;
  BgWriter& operator=(const BgWriter&) = delete;

  // Enqueue a hot-table mirror operation; `signal` is completed once the
  // hot table reflects the change. `signal` may be null (fire-and-forget,
  // used by search-path promotions).
  void submit(Op op, const KVPair& kv, uint64_t key_hash,
              SyncWriteSignal* signal);

  // Requests submitted but not yet applied, across all workers. Sampled by
  // the hdnh_bg_queue_depth metrics gauge; transiently stale by design.
  uint64_t queue_depth() const {
    const uint64_t s = submitted_.load(std::memory_order_relaxed);
    const uint64_t c = completed_.load(std::memory_order_relaxed);
    return s > c ? s - c : 0;
  }

 private:
  struct Request {
    Op op;
    KVPair kv;
    SyncWriteSignal* signal;
  };
  struct Worker {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Request> queue;
    std::thread thread;
  };

  void run(Worker& w);
  void apply(const Request& req);

  HotTable* hot_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  uint64_t obs_gauge_ = 0;  // 0 = none registered
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace hdnh
