#include "hdnh/hdnh.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "api/batch.h"
#include "common/clock.h"
#include "common/simd.h"
#include "common/threads.h"
#include "nvm/fault.h"
#include "obs/metrics.h"
#include "obs/sample.h"

namespace hdnh {

namespace {

std::unique_ptr<std::atomic<uint16_t>[]> zero_ocf(uint64_t buckets) {
  auto arr = std::make_unique<std::atomic<uint16_t>[]>(buckets * kNvSlots);
  for (uint64_t i = 0; i < buckets * kNvSlots; ++i)
    arr[i].store(0, std::memory_order_relaxed);
  return arr;
}

void cpu_pause() {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#endif
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / recovery
// ---------------------------------------------------------------------------

Hdnh::Hdnh(nvm::PmemAllocator& alloc, HdnhConfig cfg)
    : alloc_(alloc), pool_(alloc.pool()), cfg_(cfg) {
  if (cfg_.segment_bytes < kNvBucketBytes ||
      cfg_.segment_bytes % kNvBucketBytes != 0) {
    throw std::invalid_argument("segment_bytes must be a multiple of 256");
  }
  bps_ = cfg_.segment_bytes / kNvBucketBytes;
  bps_mask_ = (bps_ & (bps_ - 1)) == 0 ? bps_ - 1 : 0;

  if (alloc_.root(kSuperRoot) != 0) {
    attach_and_recover();
  } else {
    create_fresh();
  }

  if (cfg_.enable_hot_table && !hot_) {
    hot_ = std::make_unique<HotTable>(
        static_cast<uint64_t>(static_cast<double>(total_slots()) *
                              cfg_.hot_capacity_ratio),
        cfg_.hot_slots_per_bucket, cfg_.hot_policy);
  }
  if (cfg_.enable_hot_table && cfg_.sync_mode == HdnhConfig::SyncMode::kBackground) {
    bg_ = std::make_unique<BgWriter>(hot_.get(), cfg_.bg_workers);
  }
  register_obs_gauges();
}

void Hdnh::abandon_after_crash() {
  unregister_obs_gauges();
  bg_.reset();
  super_ = nullptr;  // destructor must not touch the crash image
}

Hdnh::~Hdnh() {
  unregister_obs_gauges();  // gauge callbacks capture `this`
  bg_.reset();  // drain background mirrors before marking clean
  if (super_) {
    super_->clean_item_count = count_.load(std::memory_order_relaxed);
    pool_.persist(&super_->clean_item_count, sizeof(uint64_t));
    pool_.fence();
    super_->clean_shutdown = 1;
    pool_.persist_fence(&super_->clean_shutdown, sizeof(uint32_t));
  }
}

uint64_t Hdnh::alloc_level_nvm(uint64_t segs) {
  const uint64_t bytes = segs * bps_ * kNvBucketBytes;
  const uint64_t off = alloc_.alloc(bytes, kNvBucketBytes);
  char* p = pool_.to_ptr<char>(off);
  std::memset(p, 0, bytes);
  pool_.persist(p, bytes);
  pool_.fence();
  return off;
}

Hdnh::Level Hdnh::make_level_view(uint64_t off, uint64_t segs) {
  Level lv;
  lv.off = off;
  lv.segs = segs;
  lv.seg_mask = (segs & (segs - 1)) == 0 ? segs - 1 : 0;
  lv.buckets = segs * bps_;
  lv.arr = pool_.to_ptr<NvBucket>(off);
  lv.ocf = zero_ocf(lv.buckets);
  return lv;
}

void Hdnh::create_fresh() {
  // Size the two levels (TL = 2M segments, BL = M) so initial_capacity items
  // fit below the sizing load target: total slots = 3M * bps * 8.
  const double denom =
      cfg_.sizing_load_target * 3.0 * static_cast<double>(bps_ * kNvSlots);
  uint64_t m = static_cast<uint64_t>(
      static_cast<double>(cfg_.initial_capacity) / denom) + 1;
  if (m == 0) m = 1;

  const uint64_t super_off = alloc_.alloc(sizeof(HdnhSuper));
  const uint64_t log_off = alloc_.alloc(sizeof(UpdateLogEntry) * kUpdateLogSlots);
  super_ = pool_.to_ptr<HdnhSuper>(super_off);
  std::memset(static_cast<void*>(super_), 0, sizeof(HdnhSuper));
  std::memset(pool_.to_ptr<char>(log_off), 0,
              sizeof(UpdateLogEntry) * kUpdateLogSlots);
  pool_.persist(pool_.to_ptr<char>(log_off),
                sizeof(UpdateLogEntry) * kUpdateLogSlots);

  super_->buckets_per_seg = bps_;
  super_->level_segs[0] = 2 * m;
  super_->level_segs[1] = m;
  super_->level_off[0] = alloc_level_nvm(2 * m);
  super_->level_off[1] = alloc_level_nvm(m);
  super_->magic = HdnhSuper::kMagic;
  pool_.persist(super_, sizeof(HdnhSuper));
  pool_.fence();

  // Publish roots last: a crash before this point leaves an unformatted
  // (and therefore freshly re-creatable) pool.
  alloc_.set_root(kLogRoot, log_off, sizeof(UpdateLogEntry) * kUpdateLogSlots);
  alloc_.set_root(kSuperRoot, super_off, sizeof(HdnhSuper));

  lv_[0] = make_level_view(super_->level_off[0], super_->level_segs[0]);
  lv_[1] = make_level_view(super_->level_off[1], super_->level_segs[1]);
}

void Hdnh::attach_and_recover() {
  HDNH_OBS_SPAN("recovery", "attach_recover");
  // Everything recovery persists is itself a crash point: tag the whole
  // attach so sweeps can target "crash during recovery" (the inner resize
  // swap / rehash / log-replay tags OR in on top).
  nvm::FaultScope recovery_tag(nvm::kFaultRecovery);
  super_ = pool_.to_ptr<HdnhSuper>(alloc_.root(kSuperRoot));
  if (super_->magic != HdnhSuper::kMagic) {
    throw std::runtime_error("Hdnh: pool root is not an HDNH superblock");
  }
  bps_ = super_->buckets_per_seg;
  bps_mask_ = (bps_ & (bps_ - 1)) == 0 ? bps_ - 1 : 0;
  cfg_.segment_bytes = bps_ * kNvBucketBytes;

  bool resumed = false;
  if (super_->resizing_flag) {
    resumed = true;
    uint32_t ln = super_->level_number.load(std::memory_order_relaxed);
    if (ln == 2) {
      // Resize had started but rehashing had not: the new level may or may
      // not have been allocated; nothing was written into it either way.
      // Re-derive the final pointer layout from the prev_* snapshot (§3.7:
      // "the recovery thread applies for the new level again and lets the
      // pointer of top level point to the new level").
      nvm::FaultScope swap_tag(nvm::kFaultResizeSwap);
      if (super_->new_level_off == 0) {
        super_->new_level_segs = 2 * super_->prev_tl_segs;
        super_->new_level_off = alloc_level_nvm(super_->new_level_segs);
      } else {
        // Allocation happened; re-zero it (idempotent — rehash had not run).
        char* p = pool_.to_ptr<char>(super_->new_level_off);
        const uint64_t bytes = super_->new_level_segs * bps_ * kNvBucketBytes;
        std::memset(p, 0, bytes);
        pool_.persist(p, bytes);
      }
      pool_.persist(&super_->new_level_off, 2 * sizeof(uint64_t));
      pool_.fence();
      super_->level_off[0] = super_->new_level_off;
      super_->level_segs[0] = super_->new_level_segs;
      super_->level_off[1] = super_->prev_tl_off;
      super_->level_segs[1] = super_->prev_tl_segs;
      pool_.persist(super_->level_off, 4 * sizeof(uint64_t));
      pool_.fence();
      super_->rehash_progress.store(0, std::memory_order_relaxed);
      pool_.persist(&super_->rehash_progress, sizeof(uint64_t));
      pool_.fence();
      super_->level_number.store(3, std::memory_order_relaxed);
      pool_.persist_fence(&super_->level_number, sizeof(uint32_t));
      ln = 3;
    }
    if (ln == 3) {
      // Resume draining the old bottom level from the persisted progress
      // mark. The in-progress bucket may have been partially reinserted, so
      // the resumed rehash deduplicates before each insert.
      lv_[0] = make_level_view(super_->level_off[0], super_->level_segs[0]);
      lv_[1] = make_level_view(super_->level_off[1], super_->level_segs[1]);
      // The rehash reserves slots through the OCF (claim_empty), so the
      // OCF's validity bits must reflect the persisted bitmaps BEFORE any
      // reinsert — otherwise already-occupied slots look free and get
      // overwritten.
      rebuild_pass(cfg_.recovery_threads, /*do_ocf=*/true, /*do_hot=*/false);
      Level old_bl = make_level_view(super_->prev_bl_off, super_->prev_bl_segs);
      rehash_level(old_bl, /*check_dup=*/true);
      alloc_.free_block(super_->prev_bl_off,
                        old_bl.buckets * kNvBucketBytes);
      nvm::FaultScope finish_tag(nvm::kFaultResizeFinish);
      super_->level_number.store(0, std::memory_order_relaxed);
      pool_.persist_fence(&super_->level_number, sizeof(uint32_t));
      super_->resizing_flag = 0;
      pool_.persist_fence(&super_->resizing_flag, sizeof(uint32_t));
    } else if (ln != 2) {
      // level_number is 0 while resizing_flag is still set: the crash
      // landed in a one-sided window where the steady state was already
      // (re)published but the flag's clear never reached media — either at
      // the very tail of a resize (level_number := 0 persisted first) or
      // right at its start (flag set, state 2 not yet durable; level_off
      // untouched either way). The levels under level_off are final and
      // complete, so treating this as an interrupted resize would rebuild
      // from the prev_* snapshot and silently drop every record in them.
      // Attach steady views and retire the stale flag.
      lv_[0] = make_level_view(super_->level_off[0], super_->level_segs[0]);
      lv_[1] = make_level_view(super_->level_off[1], super_->level_segs[1]);
      nvm::FaultScope finish_tag(nvm::kFaultResizeFinish);
      super_->resizing_flag = 0;
      pool_.persist_fence(&super_->resizing_flag, sizeof(uint32_t));
    }
  } else {
    lv_[0] = make_level_view(super_->level_off[0], super_->level_segs[0]);
    lv_[1] = make_level_view(super_->level_off[1], super_->level_segs[1]);
  }

  replay_update_logs();

  // Rebuild the volatile structures (OCF + hot table) in one traversal.
  if (cfg_.enable_hot_table) {
    hot_ = std::make_unique<HotTable>(
        static_cast<uint64_t>(static_cast<double>(total_slots()) *
                              cfg_.hot_capacity_ratio),
        cfg_.hot_slots_per_bucket, cfg_.hot_policy);
  }
  last_recovery_ = rebuild_volatile(cfg_.recovery_threads, /*merged=*/true);
  last_recovery_.resumed_resize = resumed;

  super_->clean_shutdown = 0;
  pool_.persist_fence(&super_->clean_shutdown, sizeof(uint32_t));
}

UpdateLogEntry* Hdnh::log_entry(uint32_t idx) const {
  return pool_.to_ptr<UpdateLogEntry>(alloc_.root(kLogRoot)) + idx;
}

void Hdnh::replay_update_logs() {
  HDNH_OBS_SPAN("recovery", "log_replay");
  nvm::FaultScope replay_tag(nvm::kFaultLogReplay);
  for (uint32_t i = 0; i < kUpdateLogSlots; ++i) {
    UpdateLogEntry* e = log_entry(i);
    if (e->state.load(std::memory_order_relaxed) != 1) continue;
    NvBucket* nb = pool_.to_ptr<NvBucket>(e->new_level_off) + e->new_bucket;
    NvBucket* ob = pool_.to_ptr<NvBucket>(e->old_level_off) + e->old_bucket;
    pool_.on_read(nb, kNvBucketBytes);
    // Defensive: only replay if the new slot really holds the logged key
    // (its content was persisted before the log was armed, so it must).
    if (nb->slots[e->new_slot].key == e->key) {
      nb->bitmap.fetch_or(static_cast<uint8_t>(1u << e->new_slot),
                          std::memory_order_relaxed);
      pool_.on_write(&nb->bitmap, 1);
      pool_.persist_fence(&nb->bitmap, 1);
      ob->bitmap.fetch_and(static_cast<uint8_t>(~(1u << e->old_slot)),
                           std::memory_order_relaxed);
      pool_.on_write(&ob->bitmap, 1);
      pool_.persist_fence(&ob->bitmap, 1);
    }
    e->state.store(0, std::memory_order_relaxed);
    pool_.persist_fence(&e->state, sizeof(uint64_t));
  }
}

void Hdnh::rebuild_pass(uint32_t threads, bool do_ocf, bool do_hot) {
  std::atomic<uint64_t> total{0};
  for (Level& lv : lv_) {
    NvBucket* arr = lv.arr;
    std::atomic<uint16_t>* ocf_arr = lv.ocf.get();
    parallel_for(lv.buckets, threads,
                 [&](uint32_t, uint64_t begin, uint64_t end) {
                   uint64_t local = 0;
                   for (uint64_t b = begin; b < end; ++b) {
                     const uint8_t bm =
                         arr[b].bitmap.load(std::memory_order_relaxed);
                     if (bm == 0) continue;
                     pool_.on_read(&arr[b], kNvBucketBytes);
                     for (uint32_t i = 0; i < kNvSlots; ++i) {
                       if (!(bm & (1u << i))) continue;
                       const KVPair& kv = arr[b].slots[i];
                       if (do_ocf) {
                         const uint8_t fp = fingerprint(key_hash1(kv.key));
                         ocf_arr[b * kNvSlots + i].store(
                             static_cast<uint16_t>(ocf::kValid | fp),
                             std::memory_order_relaxed);
                         ++local;
                       }
                       if (do_hot && hot_) hot_->put(kv);
                     }
                   }
                   if (do_ocf) total.fetch_add(local, std::memory_order_relaxed);
                 });
  }
  if (do_ocf) count_.store(total.load(), std::memory_order_relaxed);
}

Hdnh::RecoveryStats Hdnh::rebuild_volatile(uint32_t threads, bool merged) {
  HDNH_OBS_SPAN("recovery", "rebuild_volatile");
  RecoveryStats rs;
  // Start from empty volatile structures, as after a restart.
  lv_[0].ocf = zero_ocf(lv_[0].buckets);
  lv_[1].ocf = zero_ocf(lv_[1].buckets);
  if (hot_) hot_->reset(static_cast<uint64_t>(
      static_cast<double>(total_slots()) * cfg_.hot_capacity_ratio));

  ScopeTimer total;
  if (merged) {
    rebuild_pass(threads, true, true);
    rs.total_ms = total.elapsed_ms();
  } else {
    ScopeTimer t1;
    rebuild_pass(threads, true, false);
    rs.ocf_ms = t1.elapsed_ms();
    ScopeTimer t2;
    rebuild_pass(threads, false, true);
    rs.hot_ms = t2.elapsed_ms();
    rs.total_ms = total.elapsed_ms();
  }
  rs.items = count_.load(std::memory_order_relaxed);
  return rs;
}

// ---------------------------------------------------------------------------
// Addressing
// ---------------------------------------------------------------------------

int Hdnh::candidates(const Level& lv, uint64_t h1, uint64_t h2,
                     uint64_t out[4]) const {
  // 2-cuckoo at segment granularity, then 2-cuckoo bucket choice inside
  // each segment: four candidate buckets per level (§3.2). Distinct bit
  // ranges keep segment and bucket choices decorrelated. Counts are powers
  // of two in every standard configuration, so the modulus is almost always
  // a mask — this runs on every probe of every operation.
  const uint64_t s1 = lv.seg_mask ? (h1 >> 32) & lv.seg_mask : (h1 >> 32) % lv.segs;
  const uint64_t s2 = lv.seg_mask ? (h2 >> 32) & lv.seg_mask : (h2 >> 32) % lv.segs;
  // Bucket choice starts at bit 8: bits 0..7 of h1 are the fingerprint, and
  // overlapping them would correlate a bucket's residents with the probe
  // key's fingerprint, inflating the OCF false-positive rate ~16x.
  const uint64_t b1 =
      bps_mask_ ? (h1 >> 8) & bps_mask_ : ((h1 >> 8) & 0xFFFFFFu) % bps_;
  const uint64_t b2 =
      bps_mask_ ? (h2 >> 8) & bps_mask_ : ((h2 >> 8) & 0xFFFFFFu) % bps_;
  uint64_t cand[4] = {s1 * bps_ + b1, s1 * bps_ + b2, s2 * bps_ + b1,
                      s2 * bps_ + b2};
  int n = 0;
  for (int i = 0; i < 4; ++i) {
    bool dup = false;
    for (int j = 0; j < n; ++j) dup |= (out[j] == cand[i]);
    if (!dup) out[n++] = cand[i];
  }
  return n;
}

// ---------------------------------------------------------------------------
// Probe / claim primitives
// ---------------------------------------------------------------------------

bool Hdnh::verify_slot(uint32_t l, uint64_t b, uint32_t i, const Key& key,
                       uint8_t fp, Value* out, SlotLoc* loc, bool lock_found,
                       uint16_t* snapshot) {
  auto& st = nvm::Stats::local();
  Level& lv = lv_[l];
  NvBucket& nb = lv.arr[b];
  std::atomic<uint16_t>* ent = ocf_entry(lv, b, i);
  for (;;) {
    uint16_t e = ent->load(std::memory_order_acquire);
    if (ocf::busy(e)) {
      // A writer owns the slot; it clears busy before leaving its critical
      // section, so a brief spin is safe.
      st.lock_waits++;
      cpu_pause();
      continue;
    }
    if (!ocf::valid(e)) return false;
    if (cfg_.enable_ocf && ocf::fp_of(e) != fp) {
      // The whole point of the OCF: this comparison happened in DRAM and an
      // NVM slot probe was avoided.
      st.ocf_filtered++;
      return false;
    }
    pool_.on_read(&nb.slots[i], sizeof(KVPair));
    if (!(nb.slots[i].key == key)) {
      if (cfg_.enable_ocf) st.ocf_false_positive++;
      // Revalidate: if the slot changed under us, rescan it.
      if (ent->load(std::memory_order_acquire) != e) continue;
      return false;
    }
    Value v = nb.slots[i].value;
    const uint16_t e2 = ent->load(std::memory_order_acquire);
    if (e2 != e) {
      st.lock_waits++;
      continue;  // concurrent writer; re-examine the slot
    }
    if (lock_found) {
      uint16_t expected = e;
      if (!ent->compare_exchange_strong(expected,
                                        static_cast<uint16_t>(e | ocf::kBusy),
                                        std::memory_order_acq_rel)) {
        st.lock_waits++;
        continue;
      }
    }
    if (loc) {
      loc->level = l;
      loc->bucket = b;
      loc->slot = i;
    }
    if (snapshot) *snapshot = e;
    if (out) *out = v;
    return true;
  }
}

bool Hdnh::probe_find(uint64_t h1, uint64_t h2, const Key& key, uint8_t fp,
                      Value* out, SlotLoc* loc, bool lock_found,
                      uint16_t* snapshot) {
  auto& st = nvm::Stats::local();
  // Vector pre-filter pattern: with the OCF on, a slot is worth probing only
  // when it is valid, not writer-owned, and its fingerprint matches; the
  // no-OCF ablation probes every valid slot.
  const uint16_t want_mask = cfg_.enable_ocf
                                 ? static_cast<uint16_t>(
                                       ocf::kValid | ocf::kBusy | ocf::kFpMask)
                                 : static_cast<uint16_t>(ocf::kValid | ocf::kBusy);
  const uint16_t want_pattern =
      cfg_.enable_ocf ? static_cast<uint16_t>(ocf::kValid | fp) : ocf::kValid;
  for (;;) {
  const uint64_t move_seq_before = move_seq_.load(std::memory_order_acquire);
  for (uint32_t l = 0; l < 2; ++l) {
    Level& lv = lv_[l];
    uint64_t cand[4];
    const int n = candidates(lv, h1, h2, cand);
    for (int c = 0; c < n; ++c) {
      const uint64_t b = cand[c];
      // One 16-byte compare classifies all 8 OCF entries of the bucket.
      // This is only a pre-filter over a racy snapshot: every surviving
      // lane (and every writer-owned lane, whose post-release state we
      // cannot see yet) still goes through the authoritative per-slot
      // atomic snapshot/verify loop below.
      const simd::OcfMasks pre = simd::ocf_prefilter8(
          reinterpret_cast<const uint16_t*>(ocf_entry(lv, b, 0)), want_mask,
          want_pattern, ocf::kBusy, ocf::kValid);
      if (cfg_.enable_ocf) {
        // Valid, unowned lanes whose fingerprint ruled them out: each is an
        // NVM slot probe the DRAM filter saved.
        st.ocf_filtered += static_cast<uint64_t>(
            std::popcount(pre.valid & ~pre.busy & ~pre.candidate));
      }
      uint32_t pending = pre.candidate | pre.busy;
      while (pending) {
        const uint32_t i = static_cast<uint32_t>(std::countr_zero(pending));
        pending &= pending - 1;
        if (verify_slot(l, b, i, key, fp, out, loc, lock_found, snapshot)) {
          return true;
        }
      }
    }
  }
  // Miss. If an out-of-place update completed during the scan, the key may
  // have hopped to a slot we had already passed — rescan.
  if (move_seq_.load(std::memory_order_acquire) == move_seq_before) {
    return false;
  }
  st.lock_waits++;
  }
}

bool Hdnh::claim_empty_in_bucket(uint32_t level, uint64_t bucket,
                                 uint32_t skip, SlotLoc* loc) {
  Level& lv = lv_[level];
  // Vector scan for unclaimed lanes (valid and busy both clear); the CAS
  // below re-reads each lane authoritatively, so a stale mask only costs a
  // failed attempt.
  uint32_t free_mask = simd::match8x16_prefix(
      reinterpret_cast<const uint16_t*>(ocf_entry(lv, bucket, 0)), kNvSlots,
      static_cast<uint16_t>(ocf::kValid | ocf::kBusy), 0);
  if (skip < kNvSlots) free_mask &= ~(1u << skip);
  while (free_mask) {
    const uint32_t i = static_cast<uint32_t>(std::countr_zero(free_mask));
    free_mask &= free_mask - 1;
    std::atomic<uint16_t>* ent = ocf_entry(lv, bucket, i);
    uint16_t e = ent->load(std::memory_order_acquire);
    if (e & (ocf::kValid | ocf::kBusy)) continue;
    if (ent->compare_exchange_strong(e,
                                     static_cast<uint16_t>(e | ocf::kBusy),
                                     std::memory_order_acq_rel)) {
      loc->level = level;
      loc->bucket = bucket;
      loc->slot = i;
      return true;
    }
  }
  return false;
}

bool Hdnh::claim_empty(uint64_t h1, uint64_t h2, SlotLoc* loc,
                       const SlotLoc* exclude_bucket_of) {
  for (uint32_t l = 0; l < 2; ++l) {
    uint64_t cand[4];
    const int n = candidates(lv_[l], h1, h2, cand);
    for (int c = 0; c < n; ++c) {
      if (exclude_bucket_of && exclude_bucket_of->level == l &&
          exclude_bucket_of->bucket == cand[c]) {
        continue;
      }
      if (claim_empty_in_bucket(l, cand[c], kNvSlots /*no skip*/, loc)) {
        return true;
      }
    }
  }
  return false;
}

void Hdnh::ocf_release(const SlotLoc& loc, bool valid, uint8_t fp) {
  std::atomic<uint16_t>* ent = ocf_entry(lv_[loc.level], loc.bucket, loc.slot);
  const uint16_t prev = ent->load(std::memory_order_relaxed);
  ent->store(ocf::release(prev, valid, fp), std::memory_order_release);
}

void Hdnh::ocf_unlock_restore(const SlotLoc& loc, uint16_t original) {
  std::atomic<uint16_t>* ent = ocf_entry(lv_[loc.level], loc.bucket, loc.slot);
  ent->store(original, std::memory_order_release);
}

void Hdnh::publish_nvt(const SlotLoc& loc, const KVPair& kv) {
  NvBucket& nb = lv_[loc.level].arr[loc.bucket];
  nb.slots[loc.slot] = kv;
  pool_.on_write(&nb.slots[loc.slot], sizeof(KVPair));
  pool_.persist(&nb.slots[loc.slot], sizeof(KVPair));
  pool_.fence();
  if (test_hook) test_hook("insert-slot-persisted");
  nb.bitmap.fetch_or(static_cast<uint8_t>(1u << loc.slot),
                     std::memory_order_release);
  pool_.on_write(&nb.bitmap, 1);
  pool_.persist(&nb.bitmap, 1);
  pool_.fence();
}

void Hdnh::hot_mirror(BgWriter::Op op, const KVPair& kv, uint64_t h1) {
  if (!hot_) return;
  if (bg_) {
    SyncWriteSignal sig;
    bg_->submit(op, kv, h1, &sig);
    sig.wait();
  } else if (op == BgWriter::Op::kPut) {
    hot_->put(kv);
  } else {
    hot_->erase(kv.key);
  }
}

// ---------------------------------------------------------------------------
// Public operations
// ---------------------------------------------------------------------------

bool Hdnh::search(const Key& key, Value* out) {
  HDNH_OBS_OP_SAMPLE(obs::Op::kGet, &key, obs_heat_, obs_shard_);
  std::shared_lock<std::shared_mutex> lock(resize_mu_);
  if (hot_ && hot_->search(key, out)) {
    nvm::Stats::local().dram_hot_hits++;
    return true;
  }
  const uint64_t h1 = key_hash1(key);
  const uint64_t h2 = key_hash2(key);
  SlotLoc loc;
  uint16_t snap;
  if (!probe_find(h1, h2, key, fingerprint(h1), out, &loc, false, &snap)) {
    return false;
  }
  if (hot_ && cfg_.promote_on_search) {
    // Promote under the slot's busy bit: hot-table writes for a key only
    // ever happen while its OCF slot is owned, so the cache cannot be left
    // holding a value the non-volatile table has since replaced. If a
    // writer owns the slot right now, skip the promotion — it is only a
    // cache warm-up.
    std::atomic<uint16_t>* ent = ocf_entry(lv_[loc.level], loc.bucket, loc.slot);
    uint16_t expected = snap;
    if (ent->compare_exchange_strong(expected,
                                     static_cast<uint16_t>(snap | ocf::kBusy),
                                     std::memory_order_acq_rel)) {
      hot_->put(KVPair{key, *out});
      ent->store(snap, std::memory_order_release);  // data unchanged
    }
  }
  return true;
}

size_t Hdnh::multiget(const Key* keys, size_t n, Value* values, bool* found) {
  if (n == 0) return 0;
  HDNH_OBS_OP_SAMPLE_N(obs::Op::kMultiget, nullptr, obs_heat_, obs_shard_, n);
  HDNH_OBS_COUNT(obs::Op::kMultigetKeys, n);
  HDNH_OBS_HOTKEYS(keys, n);
  std::shared_lock<std::shared_mutex> lock(resize_mu_);
  auto& st = nvm::Stats::local();

  // Phase A: hash once, dedup (duplicates resolve once and fan out at the
  // end), and warm the DRAM cachelines the next phases will walk. Scratch
  // is thread-local: per-call allocations would eat the latency the
  // pipeline overlaps away at typical batch sizes.
  static thread_local std::vector<uint64_t> h1_scratch, h2_scratch;
  static thread_local std::vector<uint32_t> rep_scratch;
  static thread_local std::vector<uint32_t> pending;
  auto& h1 = h1_scratch;
  auto& h2 = h2_scratch;
  auto& rep = rep_scratch;
  h1.resize(n);
  h2.resize(n);
  rep.resize(n);
  for (size_t i = 0; i < n; ++i) {
    h1[i] = key_hash1(keys[i]);
    found[i] = false;
  }
  dedup_batch_positions(keys, n, h1.data(), rep.data());

  pending.clear();  // unique positions not yet resolved
  pending.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rep[i] != i) continue;
    pending.push_back(static_cast<uint32_t>(i));
    if (hot_) hot_->prefetch(h1[i]);
  }

  // Phase B: hot-table pass over the unique keys.
  if (hot_) {
    size_t out = 0;
    for (const uint32_t u : pending) {
      if (hot_->search(keys[u], &values[u])) {
        st.dram_hot_hits++;
        found[u] = true;
      } else {
        pending[out++] = u;
      }
    }
    pending.resize(out);
  }

  // The misses go to the OCF/NVT path: compute secondary hashes and warm
  // the OCF cachelines of every candidate bucket before touching them.
  for (const uint32_t u : pending) {
    h2[u] = key_hash2(keys[u]);
    for (uint32_t l = 0; l < 2; ++l) {
      uint64_t cand[4];
      const int nc = candidates(lv_[l], h1[u], h2[u], cand);
      for (int c = 0; c < nc; ++c) {
        __builtin_prefetch(ocf_entry(lv_[l], cand[c], 0));
      }
    }
  }

  // Phases C+D in windows: C pre-filters each key's candidate buckets in
  // DRAM, issues NVM block reads-ahead for every bucket that has a
  // surviving (or writer-owned) lane, and records those buckets as the
  // key's probe plan; D walks the plan through the authoritative per-slot
  // verify, its media reads landing on the in-flight blocks and paying only
  // the residual latency — the window stalls roughly once, not once per
  // key. Consuming the plan (instead of re-running probe_find's own scan)
  // halves the DRAM filter work per key; the plan is a stale snapshot, but
  // verify_slot re-derives everything from the live OCF word, and a key
  // relocated between C and D is caught by the move_seq_ fallback below.
  const uint16_t busy_or_valid = ocf::kValid | ocf::kBusy;
  constexpr size_t kWindow = 16;
  struct BucketPlan {
    uint32_t level;
    uint32_t lanes;  // candidate | busy at phase C time
    uint64_t bucket;
  };
  struct KeyPlan {
    uint32_t nb;
    BucketPlan b[8];  // both levels' candidate buckets, probe order
  };
  static thread_local std::vector<KeyPlan> plans;
  plans.resize(kWindow);
  for (size_t w = 0; w < pending.size(); w += kWindow) {
    const size_t we = std::min(pending.size(), w + kWindow);
    const uint64_t window_seq = move_seq_.load(std::memory_order_acquire);
    for (size_t j = w; j < we; ++j) {
      const uint32_t u = pending[j];
      KeyPlan& plan = plans[j - w];
      plan.nb = 0;
      const uint16_t want_pattern =
          cfg_.enable_ocf
              ? static_cast<uint16_t>(ocf::kValid | fingerprint(h1[u]))
              : static_cast<uint16_t>(ocf::kValid);
      const uint16_t want_mask =
          cfg_.enable_ocf ? static_cast<uint16_t>(busy_or_valid | ocf::kFpMask)
                          : busy_or_valid;
      for (uint32_t l = 0; l < 2; ++l) {
        Level& lv = lv_[l];
        uint64_t cand[4];
        const int nc = candidates(lv, h1[u], h2[u], cand);
        for (int c = 0; c < nc; ++c) {
          const simd::OcfMasks pre = simd::ocf_prefilter8(
              reinterpret_cast<const uint16_t*>(ocf_entry(lv, cand[c], 0)),
              want_mask, want_pattern, ocf::kBusy, ocf::kValid);
          if (cfg_.enable_ocf) {
            st.ocf_filtered += static_cast<uint64_t>(
                std::popcount(pre.valid & ~pre.busy & ~pre.candidate));
          }
          const uint32_t lanes = pre.candidate | pre.busy;
          if (lanes) {
            pool_.prefetch_block(&lv.arr[cand[c]], kNvBucketBytes);
            plan.b[plan.nb++] = BucketPlan{l, lanes, cand[c]};
          }
        }
      }
    }
    for (size_t j = w; j < we; ++j) {
      const uint32_t u = pending[j];
      const KeyPlan& plan = plans[j - w];
      const uint8_t fp = fingerprint(h1[u]);
      SlotLoc loc;
      uint16_t snap;
      bool hit = false;
      for (uint32_t pb = 0; pb < plan.nb && !hit; ++pb) {
        uint32_t lanes = plan.b[pb].lanes;
        while (lanes) {
          const uint32_t i = static_cast<uint32_t>(std::countr_zero(lanes));
          lanes &= lanes - 1;
          if (verify_slot(plan.b[pb].level, plan.b[pb].bucket, i, keys[u], fp,
                          &values[u], &loc, false, &snap)) {
            hit = true;
            break;
          }
        }
      }
      if (!hit) {
        // The plan can legally miss a key that moved (out-of-place update)
        // or was published after phase C scanned its bucket. probe_find
        // re-scans from live state and carries its own move_seq_ loop.
        if (move_seq_.load(std::memory_order_acquire) != window_seq &&
            probe_find(h1[u], h2[u], keys[u], fp, &values[u], &loc, false,
                       &snap)) {
          hit = true;
        }
      }
      if (!hit) continue;
      found[u] = true;
      if (hot_ && cfg_.promote_on_search) {
        std::atomic<uint16_t>* ent =
            ocf_entry(lv_[loc.level], loc.bucket, loc.slot);
        uint16_t expected = snap;
        if (ent->compare_exchange_strong(
                expected, static_cast<uint16_t>(snap | ocf::kBusy),
                std::memory_order_acq_rel)) {
          hot_->put(KVPair{keys[u], values[u]});
          ent->store(snap, std::memory_order_release);
        }
      }
    }
  }

  // Fan the representatives' answers out to their duplicates; every
  // position (duplicates included) counts its own hit.
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    if (rep[i] != i) {
      found[i] = found[rep[i]];
      if (found[i]) values[i] = values[rep[i]];
    }
    if (found[i]) ++hits;
  }
  return hits;
}

bool Hdnh::insert(const Key& key, const Value& value) {
  HDNH_OBS_OP_SAMPLE(obs::Op::kPut, &key, obs_heat_, obs_shard_);
  const uint64_t h1 = key_hash1(key);
  const uint64_t h2 = key_hash2(key);
  const uint8_t fp = fingerprint(h1);
  const KVPair kv{key, value};
  for (;;) {
    uint64_t gen;
    {
      std::shared_lock<std::shared_mutex> lock(resize_mu_);
      if (probe_find(h1, h2, key, fp, nullptr, nullptr, false)) return false;
      SlotLoc loc;
      if (claim_empty(h1, h2, &loc, nullptr)) {
        // §3.4: dispatch the hot-table mirror to a background thread first,
        // then do the durable work, then rendezvous on the signal. The
        // rendezvous happens BEFORE the OCF slot is released so hot-table
        // writes for this key stay serialized with its NVT mutations.
        if (bg_) {
          SyncWriteSignal sig;
          bg_->submit(BgWriter::Op::kPut, kv, h1, &sig);
          try {
            publish_nvt(loc, kv);
          } catch (...) {
            // Once submitted, the worker holds a pointer to the stack
            // signal until it completes it. An exception unwinding out of
            // the durable work (an injected crash point inside
            // publish_nvt) must still rendezvous first, or the worker
            // writes into a dead stack frame.
            sig.wait();
            throw;
          }
          sig.wait();
        } else {
          publish_nvt(loc, kv);
          if (hot_) hot_->put(kv);
        }
        ocf_release(loc, /*valid=*/true, fp);
        count_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      gen = gen_.load(std::memory_order_relaxed);
    }
    do_resize(gen);
  }
}

Status Hdnh::insert_s(const Key& key, const Value& value) {
  return guard(
      [&] { return insert(key, value) ? Status::Ok() : Status::Exists(); });
}

Status Hdnh::search_s(const Key& key, Value* out) {
  // The read path never allocates: no guard needed, but keep the contract
  // uniform (a future read-triggered promotion growing the hot table must
  // not start throwing across the boundary).
  return guard(
      [&] { return search(key, out) ? Status::Ok() : Status::NotFound(); });
}

Status Hdnh::update_s(const Key& key, const Value& value) {
  return guard(
      [&] { return update(key, value) ? Status::Ok() : Status::NotFound(); });
}

Status Hdnh::erase_s(const Key& key) {
  return guard(
      [&] { return erase(key) ? Status::Ok() : Status::NotFound(); });
}

bool Hdnh::update(const Key& key, const Value& value) {
  HDNH_OBS_OP_SAMPLE(obs::Op::kUpdate, &key, obs_heat_, obs_shard_);
  const uint64_t h1 = key_hash1(key);
  const uint64_t h2 = key_hash2(key);
  const uint8_t fp = fingerprint(h1);
  const KVPair kv{key, value};
  for (;;) {
    uint64_t gen;
    {
      std::shared_lock<std::shared_mutex> lock(resize_mu_);
      SlotLoc old;
      if (!probe_find(h1, h2, key, fp, nullptr, &old, /*lock_found=*/true)) {
        return false;
      }
      Level& olv = lv_[old.level];
      NvBucket& ob = olv.arr[old.bucket];
      const uint16_t old_entry_locked =
          ocf_entry(olv, old.bucket, old.slot)->load(std::memory_order_relaxed);

      SlotLoc nw;
      if (claim_empty_in_bucket(old.level, old.bucket, old.slot, &nw)) {
        // Same-bucket out-of-place update (paper Fig 10): one atomic bitmap
        // byte write flips old-invalid and new-valid together.
        ob.slots[nw.slot] = kv;
        pool_.on_write(&ob.slots[nw.slot], sizeof(KVPair));
        pool_.persist(&ob.slots[nw.slot], sizeof(KVPair));
        pool_.fence();
        const uint8_t mask = static_cast<uint8_t>((1u << old.slot) |
                                                  (1u << nw.slot));
        ob.bitmap.fetch_xor(mask, std::memory_order_release);
        pool_.on_write(&ob.bitmap, 1);
        pool_.persist(&ob.bitmap, 1);
        pool_.fence();
        hot_mirror(BgWriter::Op::kPut, kv, h1);
        ocf_release(nw, /*valid=*/true, fp);
        ocf_release(old, /*valid=*/false, 0);
        move_seq_.fetch_add(1, std::memory_order_acq_rel);
        return true;
      }

      if (claim_empty(h1, h2, &nw, &old)) {
        // Cross-bucket: the two validity bits live in different bytes, so
        // arm an update-log entry to make the flip crash-atomic.
        Level& nlv = lv_[nw.level];
        NvBucket& nb = nlv.arr[nw.bucket];
        nb.slots[nw.slot] = kv;
        pool_.on_write(&nb.slots[nw.slot], sizeof(KVPair));
        pool_.persist(&nb.slots[nw.slot], sizeof(KVPair));
        pool_.fence();

        const uint32_t li = acquire_log_slot();
        UpdateLogEntry* le = log_entry(li);
        le->key = key;
        le->old_level_off = olv.off;
        le->old_bucket = old.bucket;
        le->old_slot = old.slot;
        le->new_level_off = nlv.off;
        le->new_bucket = nw.bucket;
        le->new_slot = nw.slot;
        pool_.persist(le, sizeof(UpdateLogEntry));
        pool_.fence();
        le->state.store(1, std::memory_order_release);
        pool_.persist_fence(&le->state, sizeof(uint64_t));
        if (test_hook) test_hook("update-log-armed");

        nb.bitmap.fetch_or(static_cast<uint8_t>(1u << nw.slot),
                           std::memory_order_release);
        pool_.on_write(&nb.bitmap, 1);
        pool_.persist(&nb.bitmap, 1);
        pool_.fence();
        if (test_hook) test_hook("update-new-set");
        ob.bitmap.fetch_and(static_cast<uint8_t>(~(1u << old.slot)),
                            std::memory_order_release);
        pool_.on_write(&ob.bitmap, 1);
        pool_.persist(&ob.bitmap, 1);
        pool_.fence();

        le->state.store(0, std::memory_order_release);
        pool_.persist_fence(&le->state, sizeof(uint64_t));
        release_log_slot(li);

        hot_mirror(BgWriter::Op::kPut, kv, h1);
        ocf_release(nw, /*valid=*/true, fp);
        ocf_release(old, /*valid=*/false, 0);
        move_seq_.fetch_add(1, std::memory_order_acq_rel);
        return true;
      }

      // No free slot anywhere: back out and resize.
      ocf_unlock_restore(
          old, static_cast<uint16_t>(old_entry_locked & ~ocf::kBusy));
      gen = gen_.load(std::memory_order_relaxed);
    }
    do_resize(gen);
  }
}

bool Hdnh::erase(const Key& key) {
  HDNH_OBS_OP_SAMPLE(obs::Op::kDelete, &key, obs_heat_, obs_shard_);
  const uint64_t h1 = key_hash1(key);
  const uint64_t h2 = key_hash2(key);
  std::shared_lock<std::shared_mutex> lock(resize_mu_);
  SlotLoc loc;
  if (!probe_find(h1, h2, key, fingerprint(h1), nullptr, &loc,
                  /*lock_found=*/true)) {
    return false;
  }
  NvBucket& nb = lv_[loc.level].arr[loc.bucket];
  nb.bitmap.fetch_and(static_cast<uint8_t>(~(1u << loc.slot)),
                      std::memory_order_release);
  pool_.on_write(&nb.bitmap, 1);
  pool_.persist(&nb.bitmap, 1);
  pool_.fence();
  hot_mirror(BgWriter::Op::kErase, KVPair{key, Value{}}, h1);
  ocf_release(loc, /*valid=*/false, 0);
  count_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

// ---------------------------------------------------------------------------
// Resize (§3.7)
// ---------------------------------------------------------------------------

void Hdnh::do_resize(uint64_t expected_gen) {
  std::unique_lock<std::shared_mutex> lock(resize_mu_);
  if (gen_.load(std::memory_order_relaxed) != expected_gen) {
    return;  // another thread already resized
  }
  HDNH_OBS_SPAN("resize", "resize");

  // Steps 1-3 are the swap phase: crash-point sweeps target it through the
  // scope tag (allocator-commit events inside keep their own bit too).
  Level old_bl;
  {
  nvm::FaultScope swap_tag(nvm::kFaultResizeSwap);
  // 1. Snapshot the current layout so recovery can replay the swap from any
  //    crash point, then enter state 2.
  super_->prev_tl_off = super_->level_off[0];
  super_->prev_tl_segs = super_->level_segs[0];
  super_->prev_bl_off = super_->level_off[1];
  super_->prev_bl_segs = super_->level_segs[1];
  super_->new_level_off = 0;
  super_->new_level_segs = 0;
  pool_.persist(&super_->prev_tl_off, 6 * sizeof(uint64_t));
  pool_.fence();
  super_->resizing_flag = 1;
  pool_.persist_fence(&super_->resizing_flag, sizeof(uint32_t));
  super_->level_number.store(2, std::memory_order_relaxed);
  pool_.persist_fence(&super_->level_number, sizeof(uint32_t));
  if (test_hook) test_hook("resize-ln2");

  // 2. Allocate and publish the new top level (2x the current top).
  const uint64_t new_segs = 2 * super_->level_segs[0];
  const uint64_t new_off = alloc_level_nvm(new_segs);
  super_->new_level_off = new_off;
  super_->new_level_segs = new_segs;
  pool_.persist(&super_->new_level_off, 2 * sizeof(uint64_t));
  pool_.fence();

  // 3. Pointer swap: new level becomes TL, old TL becomes BL; the old BL is
  //    the level to drain.
  super_->level_off[0] = new_off;
  super_->level_segs[0] = new_segs;
  super_->level_off[1] = super_->prev_tl_off;
  super_->level_segs[1] = super_->prev_tl_segs;
  pool_.persist(super_->level_off, 4 * sizeof(uint64_t));
  pool_.fence();
  super_->rehash_progress.store(0, std::memory_order_relaxed);
  pool_.persist(&super_->rehash_progress, sizeof(uint64_t));
  pool_.fence();
  super_->level_number.store(3, std::memory_order_relaxed);
  pool_.persist_fence(&super_->level_number, sizeof(uint32_t));
  if (test_hook) test_hook("resize-ln3");

  // Volatile views: the old TL keeps its OCF as it slides to the bottom
  // role — its entries stay valid because items are reused in place without
  // rehashing (the Level-hashing trick the paper inherits).
  old_bl = std::move(lv_[1]);
  lv_[1] = std::move(lv_[0]);
  lv_[0] = make_level_view(new_off, new_segs);
  }

  // 4. Drain the old bottom level into the new two-level structure.
  rehash_level(old_bl, /*check_dup=*/false);
  alloc_.free_block(old_bl.off, old_bl.buckets * kNvBucketBytes);

  // 5. Back to steady state. Ordering note: level_number first, flag last —
  //    a crash between the two persists leaves resizing_flag == 1 with
  //    level_number == 0, which recovery must read as "resize complete"
  //    (see attach_and_recover), not as a resumable state.
  {
    nvm::FaultScope finish_tag(nvm::kFaultResizeFinish);
    super_->level_number.store(0, std::memory_order_relaxed);
    pool_.persist_fence(&super_->level_number, sizeof(uint32_t));
    super_->resizing_flag = 0;
    pool_.persist_fence(&super_->resizing_flag, sizeof(uint32_t));
  }

  // The hot table scales with the non-volatile table ("hot table is
  // adjustable", §3.3); it restarts cold and refills from traffic.
  if (hot_) {
    hot_->reset(static_cast<uint64_t>(static_cast<double>(total_slots()) *
                                      cfg_.hot_capacity_ratio));
  }
  ++resizes_;
  gen_.fetch_add(1, std::memory_order_relaxed);
}

void Hdnh::rehash_level(const Level& old_level, bool check_dup) {
  HDNH_OBS_SPAN("resize", "rehash_level");
  nvm::FaultScope rehash_tag(nvm::kFaultRehash);
  const uint64_t start =
      super_->rehash_progress.load(std::memory_order_relaxed);

  // Multi-threaded drain (cfg.resize_threads > 1): workers process batches
  // of old buckets through the ordinary claim/publish protocol (per-slot
  // OCF CAS), which is thread-safe and keeps the insert persist ordering —
  // so a crash at any instant still leaves only fully-published records in
  // the new levels. The persisted progress mark advances batch-by-batch:
  // a crash rolls back to the batch start, and the resumed rehash's dedup
  // pass swallows the replays.
  const uint32_t workers =
      check_dup ? 1 : std::max<uint32_t>(1, cfg_.resize_threads);
  const uint64_t remaining = old_level.buckets - start;
  const uint64_t batch = workers > 1 ? std::max<uint64_t>(workers * 8, 64)
                                     : 1;

  for (uint64_t lo = start; lo < old_level.buckets; lo += batch) {
    const uint64_t hi = std::min(old_level.buckets, lo + batch);
    parallel_for(hi - lo, workers, [&](uint32_t, uint64_t rb, uint64_t re) {
      for (uint64_t off = rb; off < re; ++off) {
        const uint64_t b = lo + off;
        const uint8_t bm =
            old_level.arr[b].bitmap.load(std::memory_order_relaxed);
        if (bm == 0) continue;
        pool_.on_read(&old_level.arr[b], kNvBucketBytes);
        for (uint32_t i = 0; i < kNvSlots; ++i) {
          if (!(bm & (1u << i))) continue;
          // A resumed rehash dedups every reinsert: the progress mark is
          // batch-granular, so any bucket of the interrupted batch may have
          // been partially drained before the crash.
          raw_reinsert(old_level.arr[b].slots[i], check_dup);
        }
      }
    });
    // Batch fully drained: persist the high-water mark (§3.7: "records the
    // indexes ... when successfully rehashing items in a bucket").
    super_->rehash_progress.store(hi, std::memory_order_relaxed);
    pool_.persist_fence(&super_->rehash_progress, sizeof(uint64_t));
    if (test_hook) test_hook("rehash-bucket");
  }
  (void)remaining;
}

void Hdnh::raw_reinsert(const KVPair& kv, bool check_dup) {
  // Insert used by rehash/recovery. Slot reservation goes through the OCF
  // busy-bit CAS (claim_empty) so multiple rehash workers can drain the old
  // level concurrently; the NVM persist ordering is the normal one.
  const uint64_t h1 = key_hash1(kv.key);
  const uint64_t h2 = key_hash2(kv.key);
  const uint8_t fp = fingerprint(h1);

  if (check_dup) {
    uint64_t cand[4];
    for (uint32_t l = 0; l < 2; ++l) {
      const int n = candidates(lv_[l], h1, h2, cand);
      for (int c = 0; c < n; ++c) {
        NvBucket& nb = lv_[l].arr[cand[c]];
        const uint8_t bm = nb.bitmap.load(std::memory_order_relaxed);
        if (bm == 0) continue;
        pool_.on_read(&nb, kNvBucketBytes);
        for (uint32_t i = 0; i < kNvSlots; ++i) {
          if ((bm & (1u << i)) && nb.slots[i].key == kv.key) return;
        }
      }
    }
  }

  SlotLoc loc;
  if (!claim_empty(h1, h2, &loc, nullptr)) {
    throw TableFullError(
        "HDNH: rehash target full (pathological skew) — cannot cascade "
        "resize mid-rehash");
  }
  publish_nvt(loc, kv);
  ocf_release(loc, /*valid=*/true, fp);
}

// ---------------------------------------------------------------------------
// Update-log slot pool
// ---------------------------------------------------------------------------

uint32_t Hdnh::acquire_log_slot() {
  for (;;) {
    uint64_t mask = log_free_mask_.load(std::memory_order_acquire);
    while (mask != 0) {
      const uint32_t idx = static_cast<uint32_t>(std::countr_zero(mask));
      if (log_free_mask_.compare_exchange_weak(
              mask, mask & ~(1ULL << idx), std::memory_order_acq_rel)) {
        return idx;
      }
    }
    cpu_pause();
  }
}

void Hdnh::release_log_slot(uint32_t idx) {
  log_free_mask_.fetch_or(1ULL << idx, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

uint64_t Hdnh::total_slots() const {
  return (lv_[0].buckets + lv_[1].buckets) * kNvSlots;
}

double Hdnh::load_factor() const {
  const uint64_t slots = total_slots();
  return slots ? static_cast<double>(count_.load(std::memory_order_relaxed)) /
                     static_cast<double>(slots)
               : 0.0;
}

void Hdnh::register_obs_gauges() {
  if constexpr (!obs::kCompiledIn) return;
  obs_label_ = "table=\"" + std::to_string(obs::Metrics::next_instance_id()) +
               "\"";
  auto add = [&](const char* name, const char* help,
                 std::function<double()> fn) {
    obs_gauges_.push_back(
        obs::Metrics::add_gauge(name, obs_label_, help, std::move(fn)));
  };
  add("hdnh_items", "Live records in the table",
      [this] { return static_cast<double>(size()); });
  add("hdnh_total_slots", "Slots across both non-volatile levels",
      [this] { return static_cast<double>(total_slots()); });
  add("hdnh_load_factor", "items / total_slots",
      [this] { return load_factor(); });
  add("hdnh_resizes", "Structural resizes completed since attach",
      [this] { return static_cast<double>(resizes_); });
  add("hdnh_resize_phase",
      "Resize state machine: 0 steady, 2 swap armed, 3 rehashing", [this] {
        return static_cast<double>(
            super_ ? super_->level_number.load(std::memory_order_relaxed) : 0);
      });
  if (hot_) {
    add("hdnh_hot_occupancy_ratio",
        "Hot-table cached items / hot-table slots", [this] {
          const uint64_t slots = hot_->total_slots();
          return slots ? static_cast<double>(hot_->occupied()) /
                             static_cast<double>(slots)
                       : 0.0;
        });
  }
}

void Hdnh::unregister_obs_gauges() {
  for (const uint64_t id : obs_gauges_) obs::Metrics::remove_gauge(id);
  obs_gauges_.clear();
}

void Hdnh::for_each(const std::function<void(const KVPair&)>& fn) const {
  std::shared_lock<std::shared_mutex> lock(resize_mu_);
  for (const Level& lv : lv_) {
    for (uint64_t b = 0; b < lv.buckets; ++b) {
      const uint8_t bm = lv.arr[b].bitmap.load(std::memory_order_acquire);
      if (bm == 0) continue;
      pool_.on_read(&lv.arr[b], kNvBucketBytes);
      for (uint32_t i = 0; i < kNvSlots; ++i) {
        if (bm & (1u << i)) fn(lv.arr[b].slots[i]);
      }
    }
  }
}

Hdnh::IntegrityReport Hdnh::check_integrity() {
  std::unique_lock<std::shared_mutex> lock(resize_mu_);
  IntegrityReport rep;

  for (uint32_t l = 0; l < 2; ++l) {
    Level& lv = lv_[l];
    for (uint64_t b = 0; b < lv.buckets; ++b) {
      const uint8_t bm = lv.arr[b].bitmap.load(std::memory_order_relaxed);
      for (uint32_t i = 0; i < kNvSlots; ++i) {
        const uint16_t e =
            ocf_entry(lv, b, i)->load(std::memory_order_relaxed);
        const bool nv_valid = bm & (1u << i);
        if (ocf::busy(e)) rep.stuck_busy_entries++;
        if (nv_valid != ocf::valid(e)) {
          rep.ocf_valid_mismatches++;
          continue;
        }
        if (!nv_valid) continue;
        rep.items++;
        const KVPair& kv = lv.arr[b].slots[i];
        const uint64_t h1 = key_hash1(kv.key);
        if (ocf::fp_of(e) != fingerprint(h1)) rep.fingerprint_mismatches++;
        // Duplicate detection: count this key's live occurrences across all
        // of its candidate buckets; flag it once, from its first location.
        const uint64_t h2 = key_hash2(kv.key);
        uint32_t occurrences = 0;
        bool first_here = true;
        for (uint32_t l2 = 0; l2 < 2; ++l2) {
          uint64_t cand[4];
          const int n = candidates(lv_[l2], h1, h2, cand);
          for (int c = 0; c < n; ++c) {
            const NvBucket& nb = lv_[l2].arr[cand[c]];
            const uint8_t bm2 = nb.bitmap.load(std::memory_order_relaxed);
            for (uint32_t j = 0; j < kNvSlots; ++j) {
              if (!(bm2 & (1u << j)) || !(nb.slots[j].key == kv.key)) continue;
              ++occurrences;
              if (l2 < l || (l2 == l && (cand[c] < b ||
                                         (cand[c] == b && j < i)))) {
                first_here = false;
              }
            }
          }
        }
        if (occurrences > 1 && first_here) rep.duplicate_keys++;
      }
    }
  }

  if (hot_) {
    hot_->for_each([&](const KVPair& cached) {
      // Every cached record must match the durable one exactly.
      const uint64_t h1 = key_hash1(cached.key);
      const uint64_t h2 = key_hash2(cached.key);
      bool matches = false;
      for (uint32_t l = 0; l < 2 && !matches; ++l) {
        uint64_t cand[4];
        const int n = candidates(lv_[l], h1, h2, cand);
        for (int c = 0; c < n && !matches; ++c) {
          const NvBucket& nb = lv_[l].arr[cand[c]];
          const uint8_t bm = nb.bitmap.load(std::memory_order_relaxed);
          for (uint32_t j = 0; j < kNvSlots; ++j) {
            if ((bm & (1u << j)) && nb.slots[j].key == cached.key &&
                nb.slots[j].value == cached.value) {
              matches = true;
              break;
            }
          }
        }
      }
      if (!matches) rep.hot_table_stale++;
    });
  }

  for (uint32_t i = 0; i < kUpdateLogSlots; ++i) {
    if (log_entry(i)->state.load(std::memory_order_relaxed) == 1) {
      rep.armed_log_entries++;
    }
  }
  return rep;
}

uint64_t Hdnh::pool_bytes_hint(uint64_t max_items, const HdnhConfig& cfg) {
  // Steady structure at ~40% average load, doubled for the resize transient
  // and for unreclaimed predecessor levels.
  const uint64_t structure = max_items * sizeof(KVPair) * 3;
  // Explicit fixed costs this table places in its pool: the allocator
  // header area, the superblock, and the update log. Counting these exactly
  // (instead of a blanket slush) matters once a pool is carved into many
  // shard regions, each paying the metadata again.
  const uint64_t metadata = nvm::PmemAllocator::header_bytes() +
                            sizeof(HdnhSuper) +
                            kUpdateLogSlots * sizeof(UpdateLogEntry) +
                            4 * nvm::kNvmBlock;
  // Headroom for segment-granular level allocation (resize doubles in
  // whole segments, so small tables overshoot by a few segments).
  const uint64_t headroom =
      std::max<uint64_t>(16 * cfg.segment_bytes, 4ULL << 20);
  return structure * 4 + metadata + headroom;
}

}  // namespace hdnh
