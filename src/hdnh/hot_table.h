// The DRAM hot table (§3.3): a two-level cache of hot records with the RAFL
// replacement strategy (plus an LRU variant used as the Fig 12 baseline).
//
// Geometry mirrors the paper: two levels sized 2:1, a configurable (default
// 4) slot count per bucket, and — unlike the OCF — a single hash
// computation yielding exactly one candidate bucket per level, so a miss
// costs at most two DRAM bucket scans.
//
// Concurrency follows the same per-slot optimistic protocol as the OCF:
// each slot carries a 16-bit state word [valid:1][busy:1][hot:1][version:6];
// writers CAS the busy bit, readers validate the version around their copy.
// All mutating entry points are safe to call from any thread (foreground or
// the §3.4 background writers).
//
// RAFL (Replacement Algorithm For hot tabLe, Fig 6): on inserting into a
// full bucket, evict the first *cold* slot (hot bit 0); if every slot is
// hot, evict a random one and clear all hot bits of the bucket so no item
// can squat forever.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "api/types.h"
#include "hdnh/config.h"

namespace hdnh {

class HotTable {
 public:
  // `total_slots` is split across the two levels (2:1); at least one bucket
  // per level is always allocated.
  HotTable(uint64_t total_slots, uint32_t slots_per_bucket,
           HdnhConfig::HotPolicy policy);

  HotTable(const HotTable&) = delete;
  HotTable& operator=(const HotTable&) = delete;

  // Lookup; on a hit copies the value, marks the slot hot (RAFL) or touches
  // its timestamp (LRU), and returns true.
  bool search(const Key& key, Value* out);

  // Warm the cachelines a search(h) would touch (both levels' candidate
  // buckets). The batched read path calls this for a whole window of keys
  // before the first lookup.
  void prefetch(uint64_t h) const;

  // Upsert: update in place when the key is cached, otherwise insert,
  // evicting per the replacement policy when the candidate buckets are
  // full. Best-effort — a slot contended by another writer may cause the
  // put to be dropped, which is always legal for a cache.
  void put(const KVPair& kv);

  // Drop a key from the cache (both levels, all duplicates).
  void erase(const Key& key);

  // Empty the cache and (optionally) adopt a new capacity. Caller must
  // guarantee quiescence (HDNH calls this under its exclusive resize lock).
  void reset(uint64_t total_slots);

  uint64_t total_slots() const { return (tl_buckets_ + bl_buckets_) * spb_; }
  uint32_t slots_per_bucket() const { return spb_; }

  // Live cached items (exact only when quiescent).
  uint64_t occupied() const;

  // Visit every valid cached record (quiescence assumed).
  void for_each(const std::function<void(const KVPair&)>& fn) const;

 private:
  struct Level {
    uint64_t buckets = 0;
    std::unique_ptr<std::atomic<uint16_t>[]> state;
    std::unique_ptr<KVPair[]> kv;
    std::unique_ptr<std::atomic<uint64_t>[]> ts;  // LRU only
  };

  uint64_t bucket_of(const Level& lv, uint64_t h) const;
  bool search_level(Level& lv, uint64_t h, const Key& key, Value* out);
  bool try_update_in_place(Level& lv, uint64_t h, const KVPair& kv);
  bool try_insert_free(Level& lv, uint64_t h, const KVPair& kv);
  bool evict_and_insert(Level& lv, uint64_t h, const KVPair& kv);
  void touch(Level& lv, uint64_t slot_idx, uint16_t observed);

  void alloc_level(Level& lv, uint64_t buckets);

  uint32_t spb_;
  HdnhConfig::HotPolicy policy_;
  uint64_t tl_buckets_, bl_buckets_;
  Level lv_[2];
  std::atomic<uint64_t> lru_clock_{1};
};

}  // namespace hdnh
