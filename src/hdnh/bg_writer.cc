#include "hdnh/bg_writer.h"

namespace hdnh {

BgWriter::BgWriter(HotTable* hot, uint32_t workers) : hot_(hot) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    Worker& w = *workers_.back();
    w.thread = std::thread([this, &w] { run(w); });
  }
}

BgWriter::~BgWriter() {
  stop_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->cv.notify_all();
    }
    w->thread.join();
  }
}

void BgWriter::submit(Op op, const KVPair& kv, uint64_t key_hash,
                      SyncWriteSignal* signal) {
  Worker& w = *workers_[key_hash % workers_.size()];
  {
    std::lock_guard<std::mutex> lock(w.mu);
    w.queue.push_back(Request{op, kv, signal});
  }
  w.cv.notify_one();
}

void BgWriter::run(Worker& w) {
  for (;;) {
    Request req;
    {
      std::unique_lock<std::mutex> lock(w.mu);
      w.cv.wait(lock, [&] {
        return !w.queue.empty() || stop_.load(std::memory_order_acquire);
      });
      if (w.queue.empty()) {
        if (stop_.load(std::memory_order_acquire)) return;
        continue;
      }
      req = w.queue.front();
      w.queue.pop_front();
    }
    switch (req.op) {
      case Op::kPut:
        hot_->put(req.kv);
        break;
      case Op::kErase:
        hot_->erase(req.kv.key);
        break;
    }
    if (req.signal) req.signal->complete();
  }
}

}  // namespace hdnh
