#include "hdnh/bg_writer.h"

#include "obs/metrics.h"

namespace hdnh {

BgWriter::BgWriter(HotTable* hot, uint32_t workers) : hot_(hot) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    Worker& w = *workers_.back();
    w.thread = std::thread([this, &w] { run(w); });
  }
  if constexpr (obs::kCompiledIn) {
    obs_gauge_ = obs::Metrics::add_gauge(
        "hdnh_bg_queue_depth",
        "writer=\"" + std::to_string(obs::Metrics::next_instance_id()) + "\"",
        "Hot-table mirror requests submitted but not yet applied",
        [this] { return static_cast<double>(queue_depth()); });
  }
}

BgWriter::~BgWriter() {
  if (obs_gauge_) obs::Metrics::remove_gauge(obs_gauge_);
  stop_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->cv.notify_all();
    }
    w->thread.join();
  }
}

void BgWriter::submit(Op op, const KVPair& kv, uint64_t key_hash,
                      SyncWriteSignal* signal) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Worker& w = *workers_[key_hash % workers_.size()];
  {
    std::lock_guard<std::mutex> lock(w.mu);
    w.queue.push_back(Request{op, kv, signal});
  }
  w.cv.notify_one();
}

void BgWriter::apply(const Request& req) {
  switch (req.op) {
    case Op::kPut:
      hot_->put(req.kv);
      break;
    case Op::kErase:
      hot_->erase(req.kv.key);
      break;
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (req.signal) req.signal->complete();
}

void BgWriter::run(Worker& w) {
  std::deque<Request> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(w.mu);
      w.cv.wait(lock, [&] {
        return !w.queue.empty() || stop_.load(std::memory_order_acquire);
      });
      if (w.queue.empty()) {
        if (stop_.load(std::memory_order_acquire)) return;
        continue;
      }
      // Drain everything queued in one go: under bursty submission the
      // mutex is taken once per batch instead of once per request, and the
      // batch shows up as a single bg_flush span rather than per-request
      // noise.
      batch.swap(w.queue);
    }
    HDNH_OBS_SPAN("bg", "bg_flush");
    for (const Request& req : batch) apply(req);
  }
}

}  // namespace hdnh
