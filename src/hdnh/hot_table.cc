#include "hdnh/hot_table.h"

#include <bit>
#include <cstring>

#include "common/random.h"
#include "common/simd.h"
#include "obs/trace.h"

namespace hdnh {

namespace {
// Hot-slot state word: [valid:1][busy:1][hot:1][unused:7][version:6].
constexpr uint16_t kHValid = 0x8000;
constexpr uint16_t kHBusy = 0x4000;
constexpr uint16_t kHHot = 0x2000;
constexpr uint16_t kHVerMask = 0x003F;

uint16_t h_release(uint16_t prev, bool valid, bool hot) {
  uint16_t v = static_cast<uint16_t>((prev + 1) & kHVerMask);
  return static_cast<uint16_t>((valid ? kHValid : 0) | (hot ? kHHot : 0) | v);
}

Rng& tls_rng() {
  thread_local Rng rng(0x9E3779B97F4A7C15ULL ^
                       reinterpret_cast<uint64_t>(&rng));
  return rng;
}
}  // namespace

HotTable::HotTable(uint64_t total_slots, uint32_t slots_per_bucket,
                   HdnhConfig::HotPolicy policy)
    : spb_(slots_per_bucket), policy_(policy) {
  const uint64_t total_buckets =
      total_slots / spb_ >= 3 ? total_slots / spb_ : 3;
  bl_buckets_ = total_buckets / 3 ? total_buckets / 3 : 1;
  tl_buckets_ = 2 * bl_buckets_;
  alloc_level(lv_[0], tl_buckets_);
  alloc_level(lv_[1], bl_buckets_);
}

void HotTable::alloc_level(Level& lv, uint64_t buckets) {
  lv.buckets = buckets;
  const uint64_t slots = buckets * spb_;
  // The vector bucket scan loads 8 state lanes at a time regardless of
  // spb_, so the state array carries 8 zeroed (never-valid) padding lanes
  // past the last bucket.
  lv.state = std::make_unique<std::atomic<uint16_t>[]>(slots + 8);
  lv.kv = std::make_unique<KVPair[]>(slots);
  for (uint64_t i = 0; i < slots + 8; ++i)
    lv.state[i].store(0, std::memory_order_relaxed);
  if (policy_ == HdnhConfig::HotPolicy::kLru) {
    lv.ts = std::make_unique<std::atomic<uint64_t>[]>(slots);
    for (uint64_t i = 0; i < slots; ++i)
      lv.ts[i].store(0, std::memory_order_relaxed);
  }
}

void HotTable::reset(uint64_t total_slots) {
  HDNH_OBS_SPAN("resize", "hot_reset");
  const uint64_t total_buckets =
      total_slots / spb_ >= 3 ? total_slots / spb_ : 3;
  bl_buckets_ = total_buckets / 3 ? total_buckets / 3 : 1;
  tl_buckets_ = 2 * bl_buckets_;
  alloc_level(lv_[0], tl_buckets_);
  alloc_level(lv_[1], bl_buckets_);
}

uint64_t HotTable::bucket_of(const Level& lv, uint64_t h) const {
  // One hash computation per key; the bottom level decorrelates with a
  // cheap remix instead of a second key hash (paper §3.3: single hash
  // function, one candidate bucket per level).
  return (&lv == &lv_[0] ? h : mix64(h)) % lv.buckets;
}

void HotTable::touch(Level& lv, uint64_t slot_idx, uint16_t observed) {
  if (policy_ == HdnhConfig::HotPolicy::kRafl) {
    // Flip hotmap bit 0 -> 1; losing the CAS race is fine (someone else
    // made it hot, or a writer owns the slot and will set its own state).
    uint16_t cur = observed;
    while (!(cur & kHHot) && (cur & kHValid) && !(cur & kHBusy)) {
      if (lv.state[slot_idx].compare_exchange_weak(
              cur, static_cast<uint16_t>(cur | kHHot),
              std::memory_order_acq_rel)) {
        break;
      }
    }
  } else {
    // LRU maintenance: bump the slot's timestamp from a global clock. The
    // shared fetch_add is exactly the kind of overhead RAFL avoids.
    lv.ts[slot_idx].store(lru_clock_.fetch_add(1, std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
}

bool HotTable::search_level(Level& lv, uint64_t h, const Key& key, Value* out) {
  const uint64_t base = bucket_of(lv, h) * spb_;
  // Vector pre-filter: lanes that are valid and not writer-owned, exactly
  // the slots the scalar scan would inspect. The per-slot verify below
  // re-loads the state atomically, so a stale mask only costs a retry —
  // same optimistic protocol as before, minus the per-lane branching.
  for (uint32_t chunk = 0; chunk < spb_; chunk += 8) {
    const uint32_t lanes = spb_ - chunk < 8 ? spb_ - chunk : 8;
    uint32_t m = (spb_ == 16 && chunk == 0)
                     ? simd::match16x16(
                           reinterpret_cast<const uint16_t*>(&lv.state[base]),
                           kHValid | kHBusy, kHValid)
                     : simd::match8x16_prefix(
                           reinterpret_cast<const uint16_t*>(
                               &lv.state[base + chunk]),
                           lanes, kHValid | kHBusy, kHValid);
    if (spb_ == 16 && chunk == 0) chunk = 8;  // 16-lane scan covered both
    while (m) {
      const uint32_t i = static_cast<uint32_t>(std::countr_zero(m));
      m &= m - 1;
      const uint64_t idx = base + (spb_ == 16 ? i : chunk + i);
      for (int attempt = 0; attempt < 4; ++attempt) {
        uint16_t s = lv.state[idx].load(std::memory_order_acquire);
        if (!(s & kHValid) || (s & kHBusy)) break;  // cache miss / in flux
        if (!(lv.kv[idx].key == key)) break;
        Value v = lv.kv[idx].value;
        uint16_t s2 = lv.state[idx].load(std::memory_order_acquire);
        if (s2 != s) continue;  // concurrent writer; retry the slot
        *out = v;
        touch(lv, idx, s);
        return true;
      }
    }
  }
  return false;
}

void HotTable::prefetch(uint64_t h) const {
  for (const Level& lv : lv_) {
    const uint64_t base = bucket_of(lv, h) * spb_;
    __builtin_prefetch(&lv.state[base]);
    __builtin_prefetch(&lv.kv[base]);
  }
}

bool HotTable::search(const Key& key, Value* out) {
  const uint64_t h = key_hash1(key);
  return search_level(lv_[0], h, key, out) ||
         search_level(lv_[1], h, key, out);
}

bool HotTable::try_update_in_place(Level& lv, uint64_t h, const KVPair& kv) {
  const uint64_t base = bucket_of(lv, h) * spb_;
  for (uint32_t i = 0; i < spb_; ++i) {
    const uint64_t idx = base + i;
    // Once the key is found in this slot, the update MUST win here (falling
    // through to an insert would leave a stale duplicate); losing the CAS
    // to a reader flipping the hot bit just means retrying.
    for (;;) {
      uint16_t s = lv.state[idx].load(std::memory_order_acquire);
      if (!(s & kHValid)) break;
      if (s & kHBusy) {
#if defined(__x86_64__)
        __builtin_ia32_pause();
#endif
        continue;
      }
      if (!(lv.kv[idx].key == kv.key)) break;
      if (!lv.state[idx].compare_exchange_strong(
              s, static_cast<uint16_t>(s | kHBusy),
              std::memory_order_acq_rel)) {
        continue;
      }
      lv.kv[idx] = kv;
      lv.state[idx].store(h_release(s, true, (s & kHHot) != 0),
                          std::memory_order_release);
      if (policy_ == HdnhConfig::HotPolicy::kLru) touch(lv, idx, 0);
      return true;
    }
  }
  return false;
}

bool HotTable::try_insert_free(Level& lv, uint64_t h, const KVPair& kv) {
  const uint64_t base = bucket_of(lv, h) * spb_;
  for (uint32_t i = 0; i < spb_; ++i) {
    const uint64_t idx = base + i;
    uint16_t s = lv.state[idx].load(std::memory_order_acquire);
    if ((s & (kHValid | kHBusy)) != 0) continue;
    if (!lv.state[idx].compare_exchange_strong(
            s, static_cast<uint16_t>(s | kHBusy), std::memory_order_acq_rel)) {
      continue;
    }
    lv.kv[idx] = kv;
    // Fresh items enter cold (hotmap 0): "the item has not been searched
    // since it was added".
    lv.state[idx].store(h_release(s, true, false), std::memory_order_release);
    if (policy_ == HdnhConfig::HotPolicy::kLru) touch(lv, idx, 0);
    return true;
  }
  return false;
}

bool HotTable::evict_and_insert(Level& lv, uint64_t h, const KVPair& kv) {
  const uint64_t base = bucket_of(lv, h) * spb_;

  auto overwrite = [&](uint64_t idx, uint16_t expected) {
    if (!lv.state[idx].compare_exchange_strong(
            expected, static_cast<uint16_t>(expected | kHBusy),
            std::memory_order_acq_rel)) {
      return false;
    }
    lv.kv[idx] = kv;
    lv.state[idx].store(h_release(expected, true, false),
                        std::memory_order_release);
    if (policy_ == HdnhConfig::HotPolicy::kLru) touch(lv, idx, 0);
    return true;
  };

  if (policy_ == HdnhConfig::HotPolicy::kRafl) {
    // Fig 6(a): evict the first cold item.
    for (uint32_t i = 0; i < spb_; ++i) {
      const uint64_t idx = base + i;
      uint16_t s = lv.state[idx].load(std::memory_order_acquire);
      if ((s & kHValid) && !(s & kHBusy) && !(s & kHHot)) {
        if (overwrite(idx, s)) return true;
      }
    }
    // Fig 6(b): all hot — evict a random slot, then clear every hotmap bit
    // of the bucket so nothing squats in the cache indefinitely.
    const uint32_t victim = static_cast<uint32_t>(tls_rng().next_below(spb_));
    for (uint32_t step = 0; step < spb_; ++step) {
      const uint64_t idx = base + (victim + step) % spb_;
      uint16_t s = lv.state[idx].load(std::memory_order_acquire);
      if ((s & kHBusy) || !(s & kHValid)) continue;
      if (!overwrite(idx, s)) continue;
      for (uint32_t i = 0; i < spb_; ++i) {
        const uint64_t j = base + i;
        if (j == idx) continue;
        uint16_t cur = lv.state[j].load(std::memory_order_acquire);
        while ((cur & kHHot) && !(cur & kHBusy)) {
          if (lv.state[j].compare_exchange_weak(
                  cur, static_cast<uint16_t>(cur & ~kHHot),
                  std::memory_order_acq_rel)) {
            break;
          }
        }
      }
      return true;
    }
    return false;  // whole bucket contended; drop the put
  }

  // LRU: evict the least-recently-used non-busy slot.
  for (uint32_t attempt = 0; attempt < spb_; ++attempt) {
    uint64_t best_idx = UINT64_MAX;
    uint64_t best_ts = UINT64_MAX;
    uint16_t best_state = 0;
    for (uint32_t i = 0; i < spb_; ++i) {
      const uint64_t idx = base + i;
      uint16_t s = lv.state[idx].load(std::memory_order_acquire);
      if (!(s & kHValid) || (s & kHBusy)) continue;
      const uint64_t t = lv.ts[idx].load(std::memory_order_relaxed);
      if (t < best_ts) {
        best_ts = t;
        best_idx = idx;
        best_state = s;
      }
    }
    if (best_idx == UINT64_MAX) return false;
    if (overwrite(best_idx, best_state)) return true;
  }
  return false;
}

void HotTable::put(const KVPair& kv) {
  const uint64_t h = key_hash1(kv.key);
  if (try_update_in_place(lv_[0], h, kv)) return;
  if (try_update_in_place(lv_[1], h, kv)) return;
  if (try_insert_free(lv_[0], h, kv)) return;
  if (try_insert_free(lv_[1], h, kv)) return;
  evict_and_insert(lv_[0], h, kv);
}

void HotTable::erase(const Key& key) {
  const uint64_t h = key_hash1(key);
  for (Level& lv : lv_) {
    const uint64_t base = bucket_of(lv, h) * spb_;
    for (uint32_t i = 0; i < spb_; ++i) {
      const uint64_t idx = base + i;
      uint16_t s = lv.state[idx].load(std::memory_order_acquire);
      if (!(s & kHValid) || (s & kHBusy)) continue;
      if (!(lv.kv[idx].key == key)) continue;
      if (!lv.state[idx].compare_exchange_strong(
              s, static_cast<uint16_t>(s | kHBusy),
              std::memory_order_acq_rel)) {
        --i;  // re-examine the slot
        continue;
      }
      lv.state[idx].store(h_release(s, false, false),
                          std::memory_order_release);
    }
  }
}

void HotTable::for_each(const std::function<void(const KVPair&)>& fn) const {
  for (const Level& lv : lv_) {
    const uint64_t slots = lv.buckets * spb_;
    for (uint64_t i = 0; i < slots; ++i) {
      if (lv.state[i].load(std::memory_order_acquire) & kHValid) fn(lv.kv[i]);
    }
  }
}

uint64_t HotTable::occupied() const {
  uint64_t n = 0;
  for (const Level& lv : lv_) {
    const uint64_t slots = lv.buckets * spb_;
    for (uint64_t i = 0; i < slots; ++i) {
      if (lv.state[i].load(std::memory_order_relaxed) & kHValid) ++n;
    }
  }
  return n;
}

}  // namespace hdnh
