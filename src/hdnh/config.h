// Tunables of the HDNH scheme. Defaults are the paper's chosen operating
// point: 16 KB segments (Fig 11a), 8-slot 256 B non-volatile buckets (§4.1),
// 4-slot hot-table buckets (Fig 11b), RAFL replacement (§3.3), and the
// synchronous-write background threads of §3.4.
#pragma once

#include <cstdint>

namespace hdnh {

struct HdnhConfig {
  // ---- non-volatile table geometry ----
  // Segment size in bytes; must be a multiple of 256 (the bucket size).
  // The paper sweeps 256 B .. 256 KB and picks 16 KB.
  uint64_t segment_bytes = 16 * 1024;

  // Initial number of items the table should hold before its first resize,
  // used to size the two levels (TL = 2M segments, BL = M segments).
  uint64_t initial_capacity = 1 << 16;

  // Fraction of slots we aim to fill before relying on resize; sizing knob
  // only (resize itself triggers on allocation failure, like the paper).
  double sizing_load_target = 0.7;

  // ---- OCF ----
  // Ablation switch: with the filter off, every valid slot of a candidate
  // bucket is probed in NVM (the pre-OCF behaviour the paper criticises in
  // Level hashing / Rewo / HMEH).
  bool enable_ocf = true;

  // ---- hot table ----
  bool enable_hot_table = true;

  // Hot-table capacity as a fraction of the non-volatile table's slots.
  double hot_capacity_ratio = 0.25;

  // Slots per hot-table bucket (Fig 11b sweeps 1..16 and picks 4).
  uint32_t hot_slots_per_bucket = 4;

  // Replacement strategy: RAFL (the contribution) or LRU (the Rewo-style
  // baseline the paper compares against in Fig 12).
  enum class HotPolicy { kRafl, kLru };
  HotPolicy hot_policy = HotPolicy::kRafl;

  // Promote items into the hot table when a search has to fall through to
  // the non-volatile table ("the items can be inserted to the hot table
  // again when these items are searched next time", §3.3).
  bool promote_on_search = true;

  // ---- synchronous write mechanism (§3.4) ----
  // kBackground uses dedicated background threads and the sync_write_signal
  // handshake; kInline performs hot-table maintenance on the foreground
  // thread (ablation mode, also the sane default on few-core hosts).
  enum class SyncMode { kInline, kBackground };
  SyncMode sync_mode = SyncMode::kInline;
  uint32_t bg_workers = 2;

  // ---- recovery ----
  uint32_t recovery_threads = 4;

  // Threads draining the old bottom level during a resize (the §3.7
  // multi-threaded bucket-batch idea applied to rehashing). Rehash workers
  // use the normal claim/publish protocol, so any value is crash-safe.
  uint32_t resize_threads = 1;
};

}  // namespace hdnh
