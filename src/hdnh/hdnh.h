// HDNH — Hybrid DRAM-NVM Hashing (the paper's contribution).
//
// Composition (paper Fig 2):
//   * non-volatile table (NVM): two levels of segments of 256 B / 8-slot
//     buckets; 2-cuckoo candidate segments x 2 candidate buckets per level
//     = 8 candidate buckets per key;
//   * OCF (DRAM): one 2-byte entry per NVT slot — fingerprint + the
//     opmap/version words driving fine-grained optimistic concurrency;
//   * hot table (DRAM): RAFL-managed cache of hot records (hot_table.h);
//   * synchronous write mechanism: background threads mirror writes into
//     the hot table while the foreground persists to NVM (bg_writer.h).
//
// Concurrency: readers are lock-free (snapshot OCF version -> read NVM ->
// revalidate); writers CAS the per-slot busy bit. Structural resize is the
// only coarse point: operations hold a shared lock, resize holds it
// exclusively (Level hashing's "global resizing lock", which the paper
// keeps). Caveat shared with the paper: two threads concurrently inserting
// the SAME brand-new key may both succeed, leaving a benign duplicate
// (searches return one of them; erase removes all).
//
// Durability: every mutation follows write-slot -> CLWB -> SFENCE ->
// flip-bitmap -> CLWB -> SFENCE; cross-bucket updates additionally arm a
// 64-entry persistent update log so recovery can finish the two-bit flip.
// See DESIGN.md §5 and the crash-injection tests.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "api/hash_table.h"
#include "hdnh/bg_writer.h"
#include "hdnh/config.h"
#include "hdnh/hot_table.h"
#include "hdnh/nv_layout.h"
#include "nvm/alloc.h"

namespace hdnh {

namespace obs {
class ShardHeat;  // obs/window.h — per-shard windowed heat accumulator
}

class Hdnh final : public HashTable {
 public:
  // Timings of the volatile-structure rebuild, for the Table 1 experiment.
  struct RecoveryStats {
    double ocf_ms = 0;
    double hot_ms = 0;
    double total_ms = 0;
    uint64_t items = 0;
    bool resumed_resize = false;
  };

  // Root slots used inside the allocator's root directory.
  static constexpr int kSuperRoot = 0;
  static constexpr int kLogRoot = 1;

  // Creates a fresh table, or — if the pool already carries an HDNH
  // superblock — attaches and runs recovery (§3.7: resume an interrupted
  // resize, replay update logs, rebuild OCF + hot table).
  explicit Hdnh(nvm::PmemAllocator& alloc, HdnhConfig cfg = {});
  ~Hdnh() override;

  bool insert(const Key& key, const Value& value) override;
  bool search(const Key& key, Value* out) override;
  bool update(const Key& key, const Value& value) override;
  bool erase(const Key& key) override;

  // Status surface (API v2): native overrides so the contract is explicit
  // rather than inherited — the resize path's TableFullError (pathological
  // rehash skew) and allocator bad_alloc both surface as kTableFull.
  Status insert_s(const Key& key, const Value& value) override;
  Status search_s(const Key& key, Value* out) override;
  Status update_s(const Key& key, const Value& value) override;
  Status erase_s(const Key& key) override;

  // Batched positive lookup: values[i]/found[i] for each keys[i]. One
  // resize-lock acquisition for the whole batch, with the work phased
  // (hash all -> hot-table pass -> OCF/NVT pass for the misses) so the
  // DRAM structures are walked with better locality than n single calls.
  // Returns the number of hits. Promotion into the hot table is applied to
  // NVT hits exactly as in search().
  size_t multiget(const Key* keys, size_t n, Value* values,
                  bool* found) override;

  uint64_t size() const override {
    return count_.load(std::memory_order_relaxed);
  }
  double load_factor() const override;
  const char* name() const override {
    return cfg_.hot_policy == HdnhConfig::HotPolicy::kLru ? "HDNH-LRU" : "HDNH";
  }

  const HdnhConfig& config() const { return cfg_; }
  uint64_t total_slots() const;
  uint64_t resize_count() const { return resizes_; }
  uint64_t hot_table_slots() const { return hot_ ? hot_->total_slots() : 0; }
  RecoveryStats last_recovery() const { return last_recovery_; }
  // Hot-table mirror requests submitted but not yet applied (0 without a
  // background writer). Crash tests assert this is 0 after an injected
  // crash unwinds an op — no worker may still hold a dead stack signal.
  uint64_t bg_queue_depth() const { return bg_ ? bg_->queue_depth() : 0; }

  // After a simulated crash this object's volatile state (OCF, hot table,
  // counters) no longer matches the pool, and its destructor would write a
  // clean-shutdown marker into the crash image. abandon_after_crash() joins
  // the background workers (they touch DRAM only — always safe) and severs
  // the superblock pointer so the destructor becomes pool-neutral; the
  // object can then be destroyed normally and a fresh Hdnh constructed over
  // the pool to run recovery.
  void abandon_after_crash();

  // Drop and rebuild OCF + hot table from the non-volatile table, as a
  // restart would. `merged` rebuilds both in one traversal (the §3.7
  // optimization); otherwise each rebuild is timed separately. Requires
  // quiescence.
  RecoveryStats rebuild_volatile(uint32_t threads, bool merged);

  // Installed by the owning ShardedTable so every op this instance serves
  // is attributed to its shard in the windowed heat signal (obs/window.h).
  // The heat object must outlive this table; unsharded stores leave it
  // null. The pointer is read by op instrumentation only (HDNH_OBS builds).
  void set_obs_heat(obs::ShardHeat* heat, uint32_t shard) {
    obs_heat_ = heat;
    obs_shard_ = shard;
  }

  // Conservative pool-size estimate for holding `max_items` including
  // resize headroom (benches/examples use this to size their PmemPool).
  static uint64_t pool_bytes_hint(uint64_t max_items, const HdnhConfig& cfg);

  // Visit every live record (stable only while quiescent; concurrent
  // writers may cause records in flight to be visited or skipped).
  void for_each(const std::function<void(const KVPair&)>& fn) const;

  // Deep structural self-check (requires quiescence): verifies that the
  // OCF mirrors the non-volatile table exactly — validity bits match the
  // persisted bitmaps, every fingerprint equals the stored key's hash byte,
  // no slot is left busy, no key is duplicated across its candidate
  // buckets, the hot table holds no key/value pair that disagrees with the
  // non-volatile table, and no update-log entry is left armed.
  struct IntegrityReport {
    uint64_t items = 0;
    uint64_t ocf_valid_mismatches = 0;
    uint64_t fingerprint_mismatches = 0;
    uint64_t stuck_busy_entries = 0;
    uint64_t duplicate_keys = 0;
    uint64_t hot_table_stale = 0;
    uint64_t armed_log_entries = 0;
    bool ok() const {
      return ocf_valid_mismatches == 0 && fingerprint_mismatches == 0 &&
             stuck_busy_entries == 0 && duplicate_keys == 0 &&
             hot_table_stale == 0 && armed_log_entries == 0;
    }
  };
  IntegrityReport check_integrity();

  // Test-only crash injection: when set, invoked at named points inside
  // resize ("resize-ln2", "resize-ln3", "rehash-bucket") and the
  // cross-bucket update path ("update-log-armed", "update-new-set"). A hook
  // that simulates a crash throws to abort the operation; the table object
  // must then be abandoned and a fresh Hdnh constructed over the pool.
  std::function<void(const char*)> test_hook;

 private:
  struct Level {
    uint64_t off = 0;
    uint64_t segs = 0;
    uint64_t seg_mask = 0;  // segs-1 when segs is a power of two, else 0
    uint64_t buckets = 0;
    NvBucket* arr = nullptr;
    std::unique_ptr<std::atomic<uint16_t>[]> ocf;  // buckets * kNvSlots
  };
  struct SlotLoc {
    uint32_t level;
    uint64_t bucket;
    uint32_t slot;
  };

  // ---- setup / recovery ----
  void create_fresh();
  void attach_and_recover();
  Level make_level_view(uint64_t off, uint64_t segs);
  uint64_t alloc_level_nvm(uint64_t segs);  // alloc + zero + persist
  void replay_update_logs();
  void rebuild_pass(uint32_t threads, bool do_ocf, bool do_hot);

  // ---- addressing ----
  int candidates(const Level& lv, uint64_t h1, uint64_t h2,
                 uint64_t out[4]) const;
  std::atomic<uint16_t>* ocf_entry(const Level& lv, uint64_t bucket,
                                   uint32_t slot) const {
    return &lv.ocf[bucket * kNvSlots + slot];
  }

  // ---- core operations (caller holds the shared resize lock) ----
  // Probe the candidate buckets for `key`. On a hit fills *out / *loc /
  // *snapshot (the OCF entry word observed at match time); with lock_found
  // the matched slot's busy bit is left set (caller must release).
  bool probe_find(uint64_t h1, uint64_t h2, const Key& key, uint8_t fp,
                  Value* out, SlotLoc* loc, bool lock_found,
                  uint16_t* snapshot = nullptr);
  // The authoritative per-slot verify shared by probe_find and the batched
  // pipeline: atomic OCF snapshot, busy spin, fingerprint check, NVM read,
  // version revalidation (and busy CAS with lock_found). The caller's
  // pre-filter may be arbitrarily stale — this re-derives everything from
  // the live OCF word.
  bool verify_slot(uint32_t l, uint64_t b, uint32_t i, const Key& key,
                   uint8_t fp, Value* out, SlotLoc* loc, bool lock_found,
                   uint16_t* snapshot);
  bool claim_empty(uint64_t h1, uint64_t h2, SlotLoc* loc,
                   const SlotLoc* exclude_bucket_of);
  bool claim_empty_in_bucket(uint32_t level, uint64_t bucket, uint32_t skip,
                             SlotLoc* loc);
  // Durable slot publish: write record -> persist -> set bitmap -> persist.
  void publish_nvt(const SlotLoc& loc, const KVPair& kv);
  void ocf_release(const SlotLoc& loc, bool valid, uint8_t fp);
  void ocf_unlock_restore(const SlotLoc& loc, uint16_t original);

  // ---- resize ----
  void do_resize(uint64_t expected_gen);
  void rehash_level(const Level& old_level, bool check_dup);
  void raw_reinsert(const KVPair& kv, bool check_dup);

  // ---- update log ----
  uint32_t acquire_log_slot();
  void release_log_slot(uint32_t idx);
  UpdateLogEntry* log_entry(uint32_t idx) const;

  void hot_mirror(BgWriter::Op op, const KVPair& kv, uint64_t h1);

  // ---- observability (src/obs) ----
  // Registers this instance's live gauges (items, load factor, hot-table
  // occupancy, resize phase) with the metrics registry; no-ops in gated-out
  // builds. The gauge callbacks capture `this`, so the destructor removes
  // them before any member teardown.
  void register_obs_gauges();
  void unregister_obs_gauges();

  nvm::PmemAllocator& alloc_;
  nvm::PmemPool& pool_;
  HdnhConfig cfg_;
  uint64_t bps_ = 0;       // buckets per segment
  uint64_t bps_mask_ = 0;  // bps_-1 when bps_ is a power of two, else 0

  HdnhSuper* super_ = nullptr;
  Level lv_[2];  // [0] = top, [1] = bottom

  std::unique_ptr<HotTable> hot_;
  std::unique_ptr<BgWriter> bg_;

  mutable std::shared_mutex resize_mu_;
  std::atomic<uint64_t> gen_{0};  // bumped by every resize
  // Bumped after every key relocation (out-of-place update): a reader that
  // finishes a candidate scan without a hit revalidates this counter and
  // rescans if a move overlapped — otherwise a key moved to an
  // already-scanned slot would be reported missing.
  std::atomic<uint64_t> move_seq_{0};
  std::atomic<uint64_t> count_{0};
  uint64_t resizes_ = 0;
  std::atomic<uint64_t> log_free_mask_{~0ULL};
  RecoveryStats last_recovery_;

  // Metrics-registry gauge handles owned by this instance (empty when the
  // HDNH_OBS gate is off), plus the `table="<id>"` label they share.
  std::vector<uint64_t> obs_gauges_;
  std::string obs_label_;
  // Shard attribution for the windowed heat signal (set_obs_heat).
  obs::ShardHeat* obs_heat_ = nullptr;
  uint32_t obs_shard_ = 0;
};

}  // namespace hdnh
