// hdnh::net::Client — a blocking RESP2 client with explicit pipelining.
//
// Two layers:
//   * the pipelining core: pipeline() queues a command's wire bytes
//     locally, flush() pushes the queue to the socket, read_reply() blocks
//     for the next reply. Replies arrive in request order (RESP has no
//     ids), so a caller keeping K requests in flight pops K replies in the
//     order it sent them — this is what bench_net's depth-D closed loop
//     and the server's MGET-heavy workloads are built on;
//   * convenience round trips (set/get/mget/...) that pipeline one
//     command, flush, and read one reply — the redis-cli-style surface.
//
// One Client is one connection and is not thread-safe; use a Client per
// thread (they are cheap).
//
// Deadlines: by default every call blocks indefinitely (the historic bench
// behavior). set_timeouts() arms poll-based connect/recv/send deadlines; a
// missed deadline throws TimeoutError (a runtime_error subclass, so
// existing catch sites keep working) and leaves the connection in an
// undefined protocol state — close() or reconnect. The replication channel
// and bench_net run with timeouts armed so a dead peer is an error, not a
// hang.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "net/buffer.h"
#include "net/resp.h"

namespace hdnh::net {

// A connect/recv/send deadline expired. Subclasses runtime_error so callers
// that only care about "the round trip failed" need no new handling.
class TimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Client {
 public:
  // Per-direction deadlines in milliseconds; 0 = block forever (default,
  // preserves bench behavior). recv_ms bounds each wait for more reply
  // bytes, not a whole multi-frame drain.
  struct Timeouts {
    int connect_ms = 0;
    int recv_ms = 0;
    int send_ms = 0;
  };

  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& o) noexcept;
  Client& operator=(Client&& o) noexcept;

  // Blocking connect; throws std::runtime_error on failure (TimeoutError
  // when a connect deadline is armed and expires).
  void connect(const std::string& host, uint16_t port, bool tcp_nodelay = true);
  void close();
  bool connected() const { return fd_ >= 0; }

  // Arm/inspect the deadlines. Takes effect for subsequent calls (an armed
  // connect deadline applies to the next connect()).
  void set_timeouts(const Timeouts& t) { timeouts_ = t; }
  const Timeouts& timeouts() const { return timeouts_; }

  // ---- pipelining core ----
  // Queue one command locally (no I/O).
  void pipeline(const std::vector<std::string>& args);
  size_t pending_bytes() const { return out_.size(); }
  // Write the queued bytes to the socket (blocking until accepted).
  void flush();
  // Block until one complete reply is available and return it. Throws
  // std::runtime_error on connection loss or a malformed reply. A RESP
  // error reply is returned as a value (type kError), not thrown: protocol
  // errors are data to a load generator.
  RespValue read_reply();

  // ---- convenience round trips ----
  RespValue command(const std::vector<std::string>& args);
  bool ping();
  // True if newly stored or overwritten; throws on a RESP error reply
  // (e.g. "-ERR table full") — see command_checked.
  void set(std::string_view key, std::string_view value);
  bool setnx(std::string_view key, std::string_view value);
  bool get(std::string_view key, std::string* out);  // false on miss
  int64_t del(std::string_view key);
  int64_t exists(std::string_view key);
  std::vector<std::optional<std::string>> mget(
      const std::vector<std::string>& keys);
  int64_t dbsize();
  std::string info();

 private:
  RespValue command_checked(const std::vector<std::string>& args);
  // Poll fd_ for `events` within timeout_ms; false on deadline expiry,
  // throws on poll failure. timeout_ms <= 0 waits forever (returns true).
  bool wait_fd(short events, int timeout_ms);

  int fd_ = -1;
  Timeouts timeouts_;
  std::string out_;  // queued, not-yet-flushed request bytes
  IoBuffer in_;      // unparsed reply bytes
};

}  // namespace hdnh::net
