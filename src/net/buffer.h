// IoBuffer — the per-connection byte queue both sides of a socket use.
//
// A flat ring with lazy compaction: bytes are appended at the tail and
// consumed from the head; instead of shifting on every consume, the head
// index advances and the dead prefix is reclaimed either when the buffer
// drains (free) or when it dominates the footprint (one memmove). This is
// the shape partial socket I/O wants: a short read appends whatever
// arrived, a short write consumes whatever the kernel took, and the bytes
// in between never move.
#pragma once

#include <cstddef>
#include <cstring>
#include <string_view>
#include <vector>

namespace hdnh::net {

class IoBuffer {
 public:
  const char* data() const { return buf_.data() + head_; }
  size_t size() const { return buf_.size() - head_; }
  bool empty() const { return head_ == buf_.size(); }
  std::string_view view() const { return {data(), size()}; }

  void append(const void* p, size_t n) {
    const char* c = static_cast<const char*>(p);
    buf_.insert(buf_.end(), c, c + n);
  }
  void append(std::string_view s) { append(s.data(), s.size()); }

  // Writable tail of `n` bytes for a read(2) to land in; commit() the
  // count that actually arrived.
  char* reserve(size_t n) {
    maybe_compact();
    const size_t used = buf_.size();
    buf_.resize(used + n);
    return buf_.data() + used;
  }
  void commit(size_t n, size_t reserved) {
    buf_.resize(buf_.size() - (reserved - n));
  }

  // Drop `n` bytes from the front (parsed input / written output).
  void consume(size_t n) {
    head_ += n;
    if (head_ == buf_.size()) {
      buf_.clear();
      head_ = 0;
    }
  }

  void clear() {
    buf_.clear();
    head_ = 0;
  }

 private:
  void maybe_compact() {
    // Reclaim the dead prefix once it is both large and the majority of
    // the allocation — amortized O(1) per byte through the buffer.
    if (head_ > 4096 && head_ * 2 > buf_.size()) {
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  std::vector<char> buf_;
  size_t head_ = 0;
};

}  // namespace hdnh::net
