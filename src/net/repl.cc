#include "net/repl.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <fcntl.h>
#include <functional>

#include "common/clock.h"
#include "net/client.h"
#include "net/resp.h"
#include "obs/metrics.h"

namespace hdnh::net {

namespace {

bool parse_u64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 20) return false;
  uint64_t v = 0;
  for (const char ch : s) {
    if (ch < '0' || ch > '9') return false;
    v = v * 10 + static_cast<uint64_t>(ch - '0');
  }
  *out = v;
  return true;
}

void make_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Sleep `ms` in small slices so a stop/seal flag is honored promptly.
void interruptible_sleep_ms(uint32_t ms, const std::function<bool()>& abort) {
  const uint64_t deadline = now_ns() + static_cast<uint64_t>(ms) * 1'000'000ull;
  while (now_ns() < deadline) {
    if (abort()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ReplLog
// ---------------------------------------------------------------------------

ReplLog::ReplLog(ReplLogOptions opts) : opts_(opts) {
  if (opts_.ring_entries == 0) opts_.ring_entries = 1;
}

ReplLog::~ReplLog() { stop(); }

void ReplLog::start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  reader_ = std::thread([this] { reader_loop(); });
  if constexpr (obs::kCompiledIn) {
    const std::string labels =
        "role=\"primary\",id=\"" +
        std::to_string(obs::Metrics::next_instance_id()) + "\"";
    obs_gauges_.push_back(obs::Metrics::add_gauge(
        "hdnh_repl_last_seq", labels,
        "Highest replication sequence number assigned",
        [this] { return static_cast<double>(last_seq()); }));
    obs_gauges_.push_back(obs::Metrics::add_gauge(
        "hdnh_repl_sinks", labels, "Attached replica connections",
        [this] { return static_cast<double>(sink_count()); }));
    obs_gauges_.push_back(obs::Metrics::add_gauge(
        "hdnh_repl_min_sink_acked", labels,
        "Lowest REPLACKed sequence across live sinks",
        [this] { return static_cast<double>(min_sink_acked()); }));
    obs_gauges_.push_back(obs::Metrics::add_gauge(
        "hdnh_repl_sink_lag", labels,
        "Entries shipped but not yet REPLACKed by the slowest sink",
        [this] {
          const uint64_t last = last_seq();
          const uint64_t acked = min_sink_acked();
          return static_cast<double>(last > acked ? last - acked : 0);
        }));
    obs_gauges_.push_back(obs::Metrics::add_gauge(
        "hdnh_repl_sinks_dropped_total", labels,
        "Replica connections dropped (dead peer or ship deadline missed)",
        [this] {
          return static_cast<double>(
              sinks_dropped_.load(std::memory_order_acquire));
        }));
  }
}

void ReplLog::stop() {
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    if (reader_.joinable()) reader_.join();
  }
  for (const uint64_t id : obs_gauges_) obs::Metrics::remove_gauge(id);
  obs_gauges_.clear();
  std::lock_guard<std::mutex> lk(mu_);
  for (Sink& s : sinks_) {
    if (s.fd >= 0) ::close(s.fd);
  }
  sinks_.clear();
  sink_count_.store(0, std::memory_order_release);
}

void ReplLog::set_base(uint64_t seq) {
  std::lock_guard<std::mutex> lk(mu_);
  if (ring_.empty() && last_seq_.load(std::memory_order_relaxed) == 0) {
    last_seq_.store(seq, std::memory_order_release);
  }
}

std::mutex& ReplLog::key_stripe(std::string_view key) {
  return stripes_[std::hash<std::string_view>{}(key) % stripes_.size()];
}

uint64_t ReplLog::append(std::initializer_list<std::string_view> op) {
  std::lock_guard<std::mutex> lk(mu_);
  const uint64_t seq = last_seq_.load(std::memory_order_relaxed) + 1;
  std::string frame;
  append_array_header(&frame, 2 + op.size());
  append_bulk(&frame, "REPLOP");
  append_bulk(&frame, std::to_string(seq));
  for (const std::string_view a : op) append_bulk(&frame, a);
  ring_.emplace_back(seq, std::move(frame));
  while (ring_.size() > opts_.ring_entries) ring_.pop_front();
  // Ship before the ack: once this returns, every live sink's kernel has
  // the bytes, so a SIGKILLed primary still delivers what it acked.
  const std::string& wire = ring_.back().second;
  for (Sink& s : sinks_) ship_to_sink(s, wire);
  drop_dead_sinks_locked();
  last_seq_.store(seq, std::memory_order_release);
  return seq;
}

uint64_t ReplLog::barrier(std::string_view tag, std::string_view arg) {
  return append({"BARRIER", tag, arg});
}

bool ReplLog::can_stream_from(uint64_t from_seq) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (ring_.empty()) return from_seq >= last_seq_.load(std::memory_order_relaxed) + 1;
  return from_seq >= ring_.front().first;
}

void ReplLog::attach_sink(int fd, uint64_t from_seq, std::string residual_in) {
  make_nonblocking(fd);
  std::lock_guard<std::mutex> lk(mu_);
  Sink s;
  s.fd = fd;
  if (!residual_in.empty()) s.in.append(residual_in);
  for (const auto& [seq, frame] : ring_) {
    if (seq < from_seq) continue;
    ship_to_sink(s, frame);
    if (s.dead) break;
  }
  if (s.dead) {
    ::close(fd);
    sinks_dropped_.fetch_add(1, std::memory_order_acq_rel);
    return;
  }
  sinks_.push_back(std::move(s));
  sink_count_.store(sinks_.size(), std::memory_order_release);
}

uint64_t ReplLog::min_sink_acked() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t acked = UINT64_MAX;
  bool any = false;
  for (const Sink& s : sinks_) {
    if (s.dead) continue;
    any = true;
    if (s.acked_seq < acked) acked = s.acked_seq;
  }
  return any ? acked : last_seq_.load(std::memory_order_acquire);
}

void ReplLog::ship_to_sink(Sink& s, std::string_view frame) {
  if (s.dead || s.fd < 0) return;
  const uint64_t deadline =
      now_ns() + static_cast<uint64_t>(opts_.send_timeout_ms) * 1'000'000ull;
  size_t off = 0;
  while (off < frame.size()) {
    errno = 0;
    const ssize_t sent = ::send(s.fd, frame.data() + off, frame.size() - off,
                                MSG_NOSIGNAL | MSG_DONTWAIT);
    if (sent > 0) {
      off += static_cast<size_t>(sent);
      continue;
    }
    if (sent == 0) {
      s.dead = true;
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const uint64_t now = now_ns();
      if (now >= deadline) {
        s.dead = true;  // cannot absorb within the deadline: shed the sink
        return;
      }
      pollfd p{s.fd, POLLOUT, 0};
      const int remaining_ms =
          static_cast<int>((deadline - now + 999'999) / 1'000'000);
      const int rc = ::poll(&p, 1, remaining_ms);
      if (rc < 0 && errno == EINTR) continue;
      if (rc <= 0) {
        s.dead = true;
        return;
      }
      continue;
    }
    s.dead = true;
    return;
  }
}

void ReplLog::drop_dead_sinks_locked() {
  bool changed = false;
  for (size_t i = 0; i < sinks_.size();) {
    if (sinks_[i].dead) {
      if (sinks_[i].fd >= 0) ::close(sinks_[i].fd);
      sinks_.erase(sinks_.begin() + static_cast<ptrdiff_t>(i));
      sinks_dropped_.fetch_add(1, std::memory_order_acq_rel);
      changed = true;
    } else {
      ++i;
    }
  }
  if (changed) sink_count_.store(sinks_.size(), std::memory_order_release);
}

void ReplLog::reader_loop() {
  std::vector<pollfd> fds;
  char buf[4096];
  while (running_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!sinks_.empty()) {
        fds.clear();
        for (const Sink& s : sinks_) fds.push_back({s.fd, POLLIN, 0});
        const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 0);
        if (rc > 0) {
          for (size_t i = 0; i < sinks_.size(); ++i) {
            if (!(fds[i].revents & (POLLIN | POLLERR | POLLHUP))) continue;
            Sink& s = sinks_[i];
            for (;;) {
              const ssize_t got = ::recv(s.fd, buf, sizeof(buf), MSG_DONTWAIT);
              if (got > 0) {
                s.in.append(buf, static_cast<size_t>(got));
                continue;
              }
              if (got == 0) s.dead = true;          // replica hung up
              else if (errno == EINTR) continue;
              else if (errno != EAGAIN && errno != EWOULDBLOCK) s.dead = true;
              break;
            }
            // Drain complete REPLACK frames from whatever has arrived.
            while (!s.dead && !s.in.empty()) {
              std::vector<std::string> args;
              size_t consumed = 0;
              const ParseResult pr =
                  parse_request(s.in.data(), s.in.size(), &consumed, &args);
              if (pr == ParseResult::kNeedMore) break;
              if (pr == ParseResult::kError) {
                s.dead = true;
                break;
              }
              s.in.consume(consumed);
              uint64_t seq = 0;
              if (args.size() >= 2 && args[0] == "REPLACK" &&
                  parse_u64(args[1], &seq) && seq > s.acked_seq) {
                s.acked_seq = seq;
              }
            }
          }
        }
        drop_dead_sinks_locked();
      }
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opts_.poll_interval_ms));
  }
}

// ---------------------------------------------------------------------------
// ReplicaSession
// ---------------------------------------------------------------------------

ReplicaSession::ReplicaSession(KvStore& store, ReplicaOptions opts)
    : store_(store), opts_(opts) {
  if (opts_.ack_every == 0) opts_.ack_every = 1;
  if (opts_.recv_timeout_ms < 50) opts_.recv_timeout_ms = 50;
}

ReplicaSession::~ReplicaSession() { stop(); }

void ReplicaSession::start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) return;
  feed_ = std::thread([this] { feed_loop(); });
  if constexpr (obs::kCompiledIn) {
    const std::string labels =
        "role=\"replica\",id=\"" +
        std::to_string(obs::Metrics::next_instance_id()) + "\"";
    obs_gauges_.push_back(obs::Metrics::add_gauge(
        "hdnh_repl_applied_seq", labels,
        "Highest replication sequence applied to the local store",
        [this] { return static_cast<double>(applied_seq()); }));
    obs_gauges_.push_back(obs::Metrics::add_gauge(
        "hdnh_repl_received_seq", labels,
        "Highest replication sequence received from the primary",
        [this] { return static_cast<double>(last_received_seq()); }));
    obs_gauges_.push_back(obs::Metrics::add_gauge(
        "hdnh_repl_connected", labels,
        "1 while the feed connection to the primary is up",
        [this] { return connected() ? 1.0 : 0.0; }));
    obs_gauges_.push_back(obs::Metrics::add_gauge(
        "hdnh_repl_promoted", labels, "1 after PROMOTE sealed the stream",
        [this] { return promoted() ? 1.0 : 0.0; }));
    obs_gauges_.push_back(obs::Metrics::add_gauge(
        "hdnh_repl_apply_errors_total", labels,
        "Streamed entries whose local apply failed (pair has diverged)",
        [this] { return static_cast<double>(apply_errors()); }));
  }
}

void ReplicaSession::stop() {
  stop_.store(true, std::memory_order_release);
  if (started_.exchange(false, std::memory_order_acq_rel)) {
    if (feed_.joinable()) feed_.join();
  }
  for (const uint64_t id : obs_gauges_) obs::Metrics::remove_gauge(id);
  obs_gauges_.clear();
}

uint64_t ReplicaSession::promote(uint32_t drain_ms) {
  if (!promoted_.load(std::memory_order_acquire)) {
    seal_deadline_ns_.store(
        now_ns() + static_cast<uint64_t>(drain_ms) * 1'000'000ull,
        std::memory_order_release);
    sealed_.store(true, std::memory_order_release);
    if (started_.load(std::memory_order_acquire)) {
      // The feed notices the seal within one recv timeout; give it the
      // drain window plus that margin before declaring the tail replayed.
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait_for(
          lk,
          std::chrono::milliseconds(drain_ms + opts_.recv_timeout_ms + 1000),
          [this] { return feed_done_; });
    }
    promoted_.store(true, std::memory_order_release);
  }
  return applied_seq();
}

void ReplicaSession::apply_entry(const std::vector<std::string>& entry) {
  // entry = {"REPLOP", "<seq>", <op>, args...}
  uint64_t seq = 0;
  if (entry.size() < 3 || !parse_u64(entry[1], &seq)) {
    apply_errors_.fetch_add(1, std::memory_order_acq_rel);
    return;
  }
  received_seq_.store(seq, std::memory_order_release);
  const std::string& op = entry[2];
  Status s = Status::Ok();
  if (op == "SET" && entry.size() >= 5) {
    s = store_.put(entry[3], entry[4]);
  } else if (op == "DEL" && entry.size() >= 4) {
    s = store_.erase(entry[3]);
    // A DEL of an already-absent key is a successful apply: the primary
    // replicates one DEL per key it actually erased, but a reconnect can
    // replay a tail the store already holds.
    if (s.code() == StatusCode::kNotFound) s = Status::Ok();
  } else if (op == "BARRIER") {
    // Sequencing only (RESHARD and friends) — nothing to apply.
  } else {
    s = Status::InvalidArgument("unknown repl op");
  }
  if (!s.ok()) apply_errors_.fetch_add(1, std::memory_order_acq_rel);
  // Published after the store op: a reader observing applied_seq >= S also
  // observes every write with seq <= S (the GETAT gate).
  applied_seq_.store(seq, std::memory_order_release);
}

void ReplicaSession::feed_loop() {
  const auto aborted = [this] {
    return stop_.load(std::memory_order_acquire) ||
           sealed_.load(std::memory_order_acquire);
  };
  uint32_t since_ack = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    if (sealed_.load(std::memory_order_acquire)) break;
    Client c;
    Client::Timeouts t;
    t.connect_ms = static_cast<int>(opts_.connect_timeout_ms);
    t.recv_ms = static_cast<int>(opts_.recv_timeout_ms);
    t.send_ms = static_cast<int>(opts_.send_timeout_ms);
    c.set_timeouts(t);
    try {
      c.connect(opts_.host, opts_.port);
    } catch (const std::exception&) {
      interruptible_sleep_ms(opts_.retry_ms, aborted);
      continue;
    }
    try {
      // Handshake: identify, then stream from the next unapplied seq. Both
      // replies arrive before the server detaches the connection; after
      // that the socket carries REPLOP frames down and REPLACK frames up.
      c.pipeline({"REPLCONF", "listening", "1"});
      c.pipeline({"REPLSTREAM",
                  std::to_string(applied_seq_.load(std::memory_order_acquire) +
                                 1)});
      c.flush();
      const RespValue r1 = c.read_reply();
      const RespValue r2 = c.read_reply();
      if (r1.is_error() || r2.is_error()) {
        // e.g. "-ERR repl log truncated": retrying from the same seq cannot
        // succeed until the operator reseeds, but keep trying so a fresh
        // primary (seq reset) picks us up.
        c.close();
        connected_.store(false, std::memory_order_release);
        interruptible_sleep_ms(opts_.retry_ms, aborted);
        continue;
      }
      connected_.store(true, std::memory_order_release);
      for (;;) {
        if (stop_.load(std::memory_order_acquire)) break;
        if (sealed_.load(std::memory_order_acquire) &&
            now_ns() > seal_deadline_ns_.load(std::memory_order_acquire)) {
          break;  // drain window closed
        }
        RespValue v;
        try {
          v = c.read_reply();
        } catch (const TimeoutError&) {
          // Stream quiet for one recv window. After a seal that means the
          // delivered tail is fully applied; otherwise ack as a keepalive.
          if (sealed_.load(std::memory_order_acquire)) break;
          c.pipeline({"REPLACK",
                      std::to_string(
                          applied_seq_.load(std::memory_order_acquire))});
          c.flush();
          continue;
        }
        if (v.type != RespValue::Type::kArray || v.elems.size() < 3) continue;
        std::vector<std::string> entry;
        entry.reserve(v.elems.size());
        for (const RespValue& e : v.elems) entry.push_back(e.str);
        apply_entry(entry);
        if (++since_ack >= opts_.ack_every) {
          since_ack = 0;
          c.pipeline({"REPLACK",
                      std::to_string(
                          applied_seq_.load(std::memory_order_acquire))});
          c.flush();
        }
      }
      // Best-effort final progress report before disconnecting.
      try {
        c.pipeline({"REPLACK",
                    std::to_string(
                        applied_seq_.load(std::memory_order_acquire))});
        c.flush();
      } catch (const std::exception&) {
      }
    } catch (const std::exception&) {
      // Connection lost (dead primary, reset, protocol error): fall through
      // to the reconnect loop.
    }
    connected_.store(false, std::memory_order_release);
    c.close();
    if (sealed_.load(std::memory_order_acquire)) break;
    if (!stop_.load(std::memory_order_acquire)) {
      interruptible_sleep_ms(opts_.retry_ms, aborted);
    }
  }
  connected_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(mu_);
    feed_done_ = true;
  }
  cv_.notify_all();
}

}  // namespace hdnh::net
