// Primary→replica replication over the RESP framing (docs/server.md
// "Replication").
//
// Two halves, one wire format:
//
//   * ReplLog — the primary side. Every acknowledged mutation (SET / DEL;
//     SETNX replicates as the SET it performed; RESHARD as a BARRIER) is
//     assigned a monotone replication sequence number and serialized as one
//     RESP array  ["REPLOP", "<seq>", <op...>]  pushed down every attached
//     replica connection ("sink"). The ship happens *before* the client's
//     ack: append() returns only once the frame's bytes have been handed to
//     the kernel for every live sink (poll-bounded, a sink that cannot
//     absorb a frame within send_timeout_ms is dropped and the lag gauges
//     say so). Bytes accepted by the kernel survive the process — even a
//     SIGKILLed primary delivers everything it acked before the FIN, which
//     is what the failover oracle leans on. A bounded ring of recent
//     entries backs late attach / reconnect catch-up (REPLSTREAM from an
//     evicted seq is refused: full resync is out of scope).
//
//   * ReplicaSession — the replica side. A background feed thread connects
//     to the primary with deadline-armed net::Client (a dead primary is a
//     reconnect loop, never a hang), pipelines REPLCONF + REPLSTREAM, then
//     applies each REPLOP into the local store through the KvStore surface
//     and acknowledges progress upstream with REPLACK frames on the same
//     connection. applied_seq() is published with release ordering after
//     the store op completes, so a reader that observes applied_seq >= S
//     also observes every write with seq <= S — the GETAT read-your-writes
//     gate is exactly that check. promote() seals the stream: the feed
//     drains the already-delivered tail, disconnects, and flips
//     promoted(), after which the owning server accepts writes.
//
// Ordering: per-key primary order is preserved by running the store
// mutation and the log append under one key-stripe lock (key_stripe());
// cross-key order is the append order, applied by the replica's single
// applier thread. Both halves export lag gauges through src/obs.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <initializer_list>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "api/kv_store.h"
#include "net/buffer.h"

namespace hdnh::net {

struct ReplLogOptions {
  // Entries retained for late-attach / reconnect catch-up. A replica whose
  // requested seq predates the ring is refused (full resync out of scope).
  size_t ring_entries = 1 << 16;
  // Per-frame ship deadline per sink: a sink that cannot absorb a frame
  // within this is dropped (backpressure must not wedge the write path
  // forever; the sink-count gauge records the shed).
  int send_timeout_ms = 5000;
  // Ack-reader cadence (REPLACK frames from sinks, dead-sink detection).
  int poll_interval_ms = 20;
};

class ReplLog {
 public:
  explicit ReplLog(ReplLogOptions opts = {});
  ~ReplLog();
  ReplLog(const ReplLog&) = delete;
  ReplLog& operator=(const ReplLog&) = delete;

  // Spawns the ack-reader thread and registers the obs gauges. Idempotent.
  void start();
  // Joins the reader, closes every sink. Idempotent; called by ~ReplLog.
  void stop();

  // Continue numbering from `seq` (a promoted replica carries its applied
  // seq forward so a chained replica can attach). Only meaningful while
  // the log is still empty; ignored otherwise.
  void set_base(uint64_t seq);

  // Assign the next seq to `op`, retain it in the ring, and ship it to
  // every attached sink before returning — the caller acks its client
  // only after append() returns. Thread-safe.
  uint64_t append(std::initializer_list<std::string_view> op);
  // A sequencing-only entry (RESHARD and friends): occupies a seq, applied
  // as a no-op by the replica.
  uint64_t barrier(std::string_view tag, std::string_view arg);

  // The per-key commit stripe: hold it across {store mutation + append} so
  // the log's per-key order matches the store's.
  std::mutex& key_stripe(std::string_view key);

  // Whether the ring still holds everything from `from_seq` on.
  bool can_stream_from(uint64_t from_seq) const;
  // Adopt `fd` (ownership transfers; non-blocking) as a replica sink and
  // stream the backlog from `from_seq` before any new append reaches it.
  // `residual_in` is input the server had already read off the connection
  // (REPLACK frames pipelined behind REPLSTREAM).
  void attach_sink(int fd, uint64_t from_seq, std::string residual_in);

  uint64_t last_seq() const {
    return last_seq_.load(std::memory_order_acquire);
  }
  size_t sink_count() const {
    return sink_count_.load(std::memory_order_acquire);
  }
  // Lowest REPLACKed seq across live sinks (last_seq() when there is none).
  uint64_t min_sink_acked() const;

 private:
  struct Sink {
    int fd = -1;
    uint64_t acked_seq = 0;
    IoBuffer in;  // REPLACK bytes read back from the replica
    bool dead = false;
  };

  // Ship `frame` to one sink within the send deadline; marks it dead on
  // failure. Caller holds mu_.
  void ship_to_sink(Sink& s, std::string_view frame);
  void reader_loop();
  void drop_dead_sinks_locked();

  ReplLogOptions opts_;
  mutable std::mutex mu_;
  std::deque<std::pair<uint64_t, std::string>> ring_;  // (seq, frame)
  std::vector<Sink> sinks_;
  std::atomic<uint64_t> last_seq_{0};
  std::atomic<size_t> sink_count_{0};
  std::atomic<uint64_t> sinks_dropped_{0};
  std::atomic<bool> running_{false};
  std::thread reader_;
  std::vector<std::mutex> stripes_{64};
  std::vector<uint64_t> obs_gauges_;
};

struct ReplicaOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint32_t connect_timeout_ms = 2000;
  // Bounds each wait for the next frame; also the feed's stop/seal poll
  // cadence, so it is clamped to >= 50 ms.
  uint32_t recv_timeout_ms = 500;
  uint32_t send_timeout_ms = 2000;
  uint32_t ack_every = 64;  // REPLACK cadence in applied entries
  uint32_t retry_ms = 200;  // reconnect backoff after a lost primary
};

class ReplicaSession {
 public:
  // `store` must outlive the session; the feed thread mutates it through
  // the concurrent KvStore surface.
  ReplicaSession(KvStore& store, ReplicaOptions opts);
  ~ReplicaSession();
  ReplicaSession(const ReplicaSession&) = delete;
  ReplicaSession& operator=(const ReplicaSession&) = delete;

  void start();  // spawns the feed thread, registers gauges. Idempotent.
  void stop();   // seals + joins without promoting. Idempotent.

  // Seal the stream: stop accepting new ops after a drain window of
  // `drain_ms` (the tail already delivered keeps applying until the stream
  // goes quiet or the window closes), disconnect, flip promoted().
  // Returns the applied seq at promotion. Idempotent.
  uint64_t promote(uint32_t drain_ms = 2000);

  bool promoted() const {
    return promoted_.load(std::memory_order_acquire);
  }
  bool connected() const {
    return connected_.load(std::memory_order_acquire);
  }
  // Everything with seq <= applied_seq() is visible in the store (release/
  // acquire pairing with the applier).
  uint64_t applied_seq() const {
    return applied_seq_.load(std::memory_order_acquire);
  }
  uint64_t last_received_seq() const {
    return received_seq_.load(std::memory_order_acquire);
  }
  // Entries whose apply failed (e.g. a smaller replica running full);
  // nonzero means the pair has diverged.
  uint64_t apply_errors() const {
    return apply_errors_.load(std::memory_order_acquire);
  }

 private:
  void feed_loop();
  // One streamed entry into the store; updates applied/received seqs.
  void apply_entry(const std::vector<std::string>& entry);

  KvStore& store_;
  ReplicaOptions opts_;
  std::atomic<uint64_t> applied_seq_{0};
  std::atomic<uint64_t> received_seq_{0};
  std::atomic<uint64_t> apply_errors_{0};
  std::atomic<bool> connected_{false};
  std::atomic<bool> sealed_{false};
  std::atomic<bool> promoted_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> seal_deadline_ns_{0};
  std::atomic<bool> started_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  bool feed_done_ = false;
  std::thread feed_;
  std::vector<uint64_t> obs_gauges_;
};

}  // namespace hdnh::net
