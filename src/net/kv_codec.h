// Compatibility shim: the fixed-record wire codec moved to api/kv_store.h
// when the KvStore surface was introduced (the server now derives its
// limits from the store, and the codec is the FixedTableKv adapter's
// concern). Existing includes of net/kv_codec.h keep working through these
// aliases.
#pragma once

#include "api/kv_store.h"

namespace hdnh::net {

using hdnh::kMaxWireKeyLen;
using hdnh::kMaxWireValueLen;

using hdnh::decode_key;
using hdnh::decode_value;
using hdnh::encode_key;
using hdnh::encode_value;

}  // namespace hdnh::net
