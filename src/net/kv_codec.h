// Wire <-> record codec. The store's records are fixed-size (16 B keys,
// 15 B values — the paper's 256 B-bucket packing); the wire carries
// arbitrary byte strings. The codec packs a string into the fixed box with
// its length in the last byte and zero padding in between, so:
//   * wire keys are 0..15 bytes, wire values 0..14 bytes;
//   * distinct strings map to distinct records ("a" != "a\0");
//   * decode recovers the exact bytes, not a padded approximation.
// Oversized payloads are rejected at the protocol boundary (RESP error),
// never truncated.
#pragma once

#include <cstring>
#include <string>
#include <string_view>

#include "api/types.h"

namespace hdnh::net {

inline constexpr size_t kMaxWireKeyLen = kKeyBytes - 1;      // 15
inline constexpr size_t kMaxWireValueLen = kValueBytes - 1;  // 14

inline bool encode_key(std::string_view s, Key* out) {
  if (s.size() > kMaxWireKeyLen) return false;
  std::memset(out->b, 0, kKeyBytes);
  std::memcpy(out->b, s.data(), s.size());
  out->b[kKeyBytes - 1] = static_cast<uint8_t>(s.size());
  return true;
}

inline bool encode_value(std::string_view s, Value* out) {
  if (s.size() > kMaxWireValueLen) return false;
  std::memset(out->b, 0, kValueBytes);
  std::memcpy(out->b, s.data(), s.size());
  out->b[kValueBytes - 1] = static_cast<uint8_t>(s.size());
  return true;
}

inline std::string decode_value(const Value& v) {
  const size_t len = v.b[kValueBytes - 1];
  return std::string(reinterpret_cast<const char*>(v.b),
                     len > kMaxWireValueLen ? kMaxWireValueLen : len);
}

inline std::string decode_key(const Key& k) {
  const size_t len = k.b[kKeyBytes - 1];
  return std::string(reinterpret_cast<const char*>(k.b),
                     len > kMaxWireKeyLen ? kMaxWireKeyLen : len);
}

}  // namespace hdnh::net
