#include "net/resp.h"

#include <cstdlib>

namespace hdnh::net {

namespace {

ParseResult fail(std::string* err, const char* why) {
  if (err) *err = why;
  return ParseResult::kError;
}

// Find "\r\n" starting at `from`; npos if not present.
size_t find_crlf(const char* data, size_t len, size_t from) {
  for (size_t i = from; i + 1 < len; ++i) {
    if (data[i] == '\r' && data[i + 1] == '\n') return i;
  }
  return std::string::npos;
}

// Parse the signed decimal between data[from] and the CRLF at `end`.
// RESP length headers are small; 19 digits bounds them well inside int64.
bool parse_int_line(const char* data, size_t from, size_t end, int64_t* out) {
  if (from == end) return false;
  bool neg = false;
  size_t i = from;
  if (data[i] == '-') {
    neg = true;
    ++i;
  }
  if (i == end || end - i > 19) return false;
  int64_t v = 0;
  for (; i < end; ++i) {
    if (data[i] < '0' || data[i] > '9') return false;
    v = v * 10 + (data[i] - '0');
  }
  *out = neg ? -v : v;
  return true;
}

ParseResult parse_value_rec(const char* data, size_t len, size_t* consumed,
                            RespValue* out, std::string* err, int depth) {
  if (len == 0) return ParseResult::kNeedMore;
  if (depth > kMaxParseDepth) return fail(err, "nesting too deep");

  const char type = data[0];
  const size_t line_end = find_crlf(data, len, 1);

  switch (type) {
    case '+':
    case '-': {
      if (line_end == std::string::npos) {
        if (len > kMaxInlineLen) return fail(err, "line too long");
        return ParseResult::kNeedMore;
      }
      out->type = type == '+' ? RespValue::Type::kSimple
                              : RespValue::Type::kError;
      out->str.assign(data + 1, line_end - 1);
      *consumed = line_end + 2;
      return ParseResult::kOk;
    }
    case ':': {
      if (line_end == std::string::npos) {
        if (len > kMaxInlineLen) return fail(err, "line too long");
        return ParseResult::kNeedMore;
      }
      out->type = RespValue::Type::kInteger;
      if (!parse_int_line(data, 1, line_end, &out->integer)) {
        return fail(err, "bad integer");
      }
      *consumed = line_end + 2;
      return ParseResult::kOk;
    }
    case '$': {
      if (line_end == std::string::npos) {
        if (len > kMaxInlineLen) return fail(err, "line too long");
        return ParseResult::kNeedMore;
      }
      int64_t blen;
      if (!parse_int_line(data, 1, line_end, &blen) || blen < -1) {
        return fail(err, "bad bulk length");
      }
      if (blen == -1) {
        out->type = RespValue::Type::kNil;
        *consumed = line_end + 2;
        return ParseResult::kOk;
      }
      if (static_cast<uint64_t>(blen) > kMaxBulkLen) {
        return fail(err, "bulk length too large");
      }
      const size_t need = line_end + 2 + static_cast<size_t>(blen) + 2;
      if (len < need) return ParseResult::kNeedMore;
      if (data[need - 2] != '\r' || data[need - 1] != '\n') {
        return fail(err, "bulk not CRLF-terminated");
      }
      out->type = RespValue::Type::kBulk;
      out->str.assign(data + line_end + 2, static_cast<size_t>(blen));
      *consumed = need;
      return ParseResult::kOk;
    }
    case '*': {
      if (line_end == std::string::npos) {
        if (len > kMaxInlineLen) return fail(err, "line too long");
        return ParseResult::kNeedMore;
      }
      int64_t n;
      if (!parse_int_line(data, 1, line_end, &n) || n < -1) {
        return fail(err, "bad array length");
      }
      out->type = n == -1 ? RespValue::Type::kNil : RespValue::Type::kArray;
      out->elems.clear();
      size_t pos = line_end + 2;
      if (n > 0) {
        if (static_cast<uint64_t>(n) > kMaxArrayLen) {
          return fail(err, "array length too large");
        }
        out->elems.reserve(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i) {
          RespValue elem;
          size_t used = 0;
          const ParseResult r = parse_value_rec(data + pos, len - pos, &used,
                                                &elem, err, depth + 1);
          if (r != ParseResult::kOk) return r;
          out->elems.push_back(std::move(elem));
          pos += used;
        }
      }
      *consumed = pos;
      return ParseResult::kOk;
    }
    default:
      return fail(err, "unknown type byte");
  }
}

}  // namespace

ParseResult parse_value(const char* data, size_t len, size_t* consumed,
                        RespValue* out, std::string* err) {
  return parse_value_rec(data, len, consumed, out, err, 0);
}

ParseResult parse_request(const char* data, size_t len, size_t* consumed,
                          std::vector<std::string>* args, std::string* err) {
  args->clear();
  if (len == 0) return ParseResult::kNeedMore;

  if (data[0] != '*') {
    // Inline command: one line, whitespace-separated words.
    const size_t nl = find_crlf(data, len, 0);
    if (nl == std::string::npos) {
      if (len > kMaxInlineLen) return fail(err, "inline command too long");
      return ParseResult::kNeedMore;
    }
    size_t i = 0;
    while (i < nl) {
      while (i < nl && (data[i] == ' ' || data[i] == '\t')) ++i;
      size_t start = i;
      while (i < nl && data[i] != ' ' && data[i] != '\t') ++i;
      if (i > start) args->emplace_back(data + start, i - start);
    }
    *consumed = nl + 2;
    return ParseResult::kOk;  // possibly empty: caller skips blank lines
  }

  RespValue v;
  const ParseResult r = parse_value(data, len, consumed, &v, err);
  if (r != ParseResult::kOk) return r;
  if (v.type == RespValue::Type::kNil) return ParseResult::kOk;  // *-1: skip
  args->reserve(v.elems.size());
  for (auto& e : v.elems) {
    if (e.type != RespValue::Type::kBulk) {
      return fail(err, "request array element is not a bulk string");
    }
    args->push_back(std::move(e.str));
  }
  return ParseResult::kOk;
}

void append_simple(std::string* out, std::string_view s) {
  out->push_back('+');
  out->append(s);
  out->append("\r\n");
}

void append_error(std::string* out, std::string_view msg) {
  out->push_back('-');
  out->append(msg);
  out->append("\r\n");
}

void append_integer(std::string* out, int64_t v) {
  out->push_back(':');
  out->append(std::to_string(v));
  out->append("\r\n");
}

void append_bulk(std::string* out, std::string_view payload) {
  out->push_back('$');
  out->append(std::to_string(payload.size()));
  out->append("\r\n");
  out->append(payload);
  out->append("\r\n");
}

void append_nil(std::string* out) { out->append("$-1\r\n"); }

void append_array_header(std::string* out, size_t n) {
  out->push_back('*');
  out->append(std::to_string(n));
  out->append("\r\n");
}

void append_command(std::string* out, const std::vector<std::string>& args) {
  append_array_header(out, args.size());
  for (const auto& a : args) append_bulk(out, a);
}

}  // namespace hdnh::net
