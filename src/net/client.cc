#include "net/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace hdnh::net {

namespace {
constexpr size_t kReadChunk = 16 * 1024;

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + strerror(errno));
}
}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)),
      out_(std::move(o.out_)),
      in_(std::move(o.in_)) {}

Client& Client::operator=(Client&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = std::exchange(o.fd_, -1);
    out_ = std::move(o.out_);
    in_ = std::move(o.in_);
  }
  return *this;
}

void Client::connect(const std::string& host, uint16_t port, bool tcp_nodelay) {
  close();
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0 || !res) {
    throw std::runtime_error("resolve " + host + ": " + gai_strerror(rc));
  }
  int fd = -1;
  for (addrinfo* ai = res; ai; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    throw std::runtime_error("connect " + host + ":" + std::to_string(port) +
                             ": " + strerror(errno));
  }
  if (tcp_nodelay) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  fd_ = fd;
  out_.clear();
  in_.clear();
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  out_.clear();
  in_.clear();
}

void Client::pipeline(const std::vector<std::string>& args) {
  append_command(&out_, args);
}

void Client::flush() {
  size_t off = 0;
  while (off < out_.size()) {
    const ssize_t sent = ::send(fd_, out_.data() + off, out_.size() - off,
                                MSG_NOSIGNAL);
    if (sent > 0) {
      off += static_cast<size_t>(sent);
      continue;
    }
    if (errno == EINTR) continue;
    throw_errno("send");
  }
  out_.clear();
}

RespValue Client::read_reply() {
  for (;;) {
    if (!in_.empty()) {
      RespValue v;
      size_t consumed = 0;
      std::string err;
      const ParseResult r =
          parse_value(in_.data(), in_.size(), &consumed, &v, &err);
      if (r == ParseResult::kOk) {
        in_.consume(consumed);
        return v;
      }
      if (r == ParseResult::kError) {
        throw std::runtime_error("malformed reply: " + err);
      }
    }
    char* dst = in_.reserve(kReadChunk);
    const ssize_t got = ::recv(fd_, dst, kReadChunk, 0);
    if (got > 0) {
      in_.commit(static_cast<size_t>(got), kReadChunk);
      continue;
    }
    in_.commit(0, kReadChunk);
    if (got == 0) throw std::runtime_error("connection closed by server");
    if (errno == EINTR) continue;
    throw_errno("recv");
  }
}

RespValue Client::command(const std::vector<std::string>& args) {
  pipeline(args);
  flush();
  return read_reply();
}

RespValue Client::command_checked(const std::vector<std::string>& args) {
  RespValue v = command(args);
  if (v.is_error()) {
    throw std::runtime_error("server error for '" + args[0] + "': " + v.str);
  }
  return v;
}

bool Client::ping() {
  const RespValue v = command({"PING"});
  return v.type == RespValue::Type::kSimple && v.str == "PONG";
}

void Client::set(std::string_view key, std::string_view value) {
  command_checked({"SET", std::string(key), std::string(value)});
}

bool Client::setnx(std::string_view key, std::string_view value) {
  return command_checked({"SETNX", std::string(key), std::string(value)})
             .integer == 1;
}

bool Client::get(std::string_view key, std::string* out) {
  const RespValue v = command_checked({"GET", std::string(key)});
  if (v.is_nil()) return false;
  if (out) *out = v.str;
  return true;
}

int64_t Client::del(std::string_view key) {
  return command_checked({"DEL", std::string(key)}).integer;
}

int64_t Client::exists(std::string_view key) {
  return command_checked({"EXISTS", std::string(key)}).integer;
}

std::vector<std::optional<std::string>> Client::mget(
    const std::vector<std::string>& keys) {
  std::vector<std::string> args;
  args.reserve(keys.size() + 1);
  args.emplace_back("MGET");
  args.insert(args.end(), keys.begin(), keys.end());
  const RespValue v = command_checked(args);
  std::vector<std::optional<std::string>> out;
  out.reserve(v.elems.size());
  for (const auto& e : v.elems) {
    if (e.is_nil()) {
      out.emplace_back(std::nullopt);
    } else {
      out.emplace_back(e.str);
    }
  }
  return out;
}

int64_t Client::dbsize() { return command_checked({"DBSIZE"}).integer; }

std::string Client::info() { return command_checked({"INFO"}).str; }

}  // namespace hdnh::net
