#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/clock.h"

namespace hdnh::net {

namespace {
constexpr size_t kReadChunk = 16 * 1024;

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + strerror(errno));
}

// poll() one fd with an absolute deadline, restarting on EINTR with the
// remaining budget. true = ready (or error/hup — the following syscall
// reports the detail), false = deadline expired.
bool poll_deadline(int fd, short events, int timeout_ms) {
  if (timeout_ms <= 0) return true;
  const uint64_t deadline = now_ns() + static_cast<uint64_t>(timeout_ms) * 1'000'000ull;
  for (;;) {
    const uint64_t now = now_ns();
    if (now >= deadline) return false;
    const int remaining_ms =
        static_cast<int>((deadline - now + 999'999) / 1'000'000);
    pollfd p{fd, events, 0};
    const int rc = ::poll(&p, 1, remaining_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    throw_errno("poll");
  }
}

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return;
  ::fcntl(fd, F_SETFL, on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK));
}
}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)),
      timeouts_(o.timeouts_),
      out_(std::move(o.out_)),
      in_(std::move(o.in_)) {}

Client& Client::operator=(Client&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = std::exchange(o.fd_, -1);
    timeouts_ = o.timeouts_;
    out_ = std::move(o.out_);
    in_ = std::move(o.in_);
  }
  return *this;
}

bool Client::wait_fd(short events, int timeout_ms) {
  return poll_deadline(fd_, events, timeout_ms);
}

void Client::connect(const std::string& host, uint16_t port, bool tcp_nodelay) {
  close();
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0 || !res) {
    throw std::runtime_error("resolve " + host + ": " + gai_strerror(rc));
  }
  // last_err is captured *before* any ::close — close(2) may overwrite
  // errno, and reporting close's errno (or stale garbage when every
  // socket(2) fails) mislabels the real refusal.
  int fd = -1;
  int last_err = 0;
  bool timed_out = false;
  for (addrinfo* ai = res; ai; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) {
      last_err = errno;
      continue;
    }
    if (timeouts_.connect_ms > 0) {
      // Deadline-bounded connect: start it non-blocking, poll for
      // writability, then read the final verdict from SO_ERROR.
      set_nonblocking(fd, true);
      const int crc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
      if (crc == 0) {
        set_nonblocking(fd, false);
        break;
      }
      if (errno == EINPROGRESS) {
        if (!poll_deadline(fd, POLLOUT, timeouts_.connect_ms)) {
          timed_out = true;
          last_err = ETIMEDOUT;
          ::close(fd);
          fd = -1;
          continue;
        }
        int so_err = 0;
        socklen_t len = sizeof(so_err);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_err, &len);
        if (so_err == 0) {
          set_nonblocking(fd, false);
          break;
        }
        last_err = so_err;
      } else {
        last_err = errno;
      }
    } else {
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
      last_err = errno;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    const std::string where = "connect " + host + ":" + std::to_string(port);
    if (timed_out && last_err == ETIMEDOUT) {
      throw TimeoutError(where + ": timed out after " +
                         std::to_string(timeouts_.connect_ms) + " ms");
    }
    throw std::runtime_error(
        where + ": " +
        (last_err ? strerror(last_err) : "no usable address"));
  }
  if (tcp_nodelay) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  fd_ = fd;
  out_.clear();
  in_.clear();
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  out_.clear();
  in_.clear();
}

void Client::pipeline(const std::vector<std::string>& args) {
  append_command(&out_, args);
}

void Client::flush() {
  // With a send deadline armed, send non-blocking and poll for writability
  // so a peer that stops reading is a TimeoutError, not a permanent block.
  const int flags =
      MSG_NOSIGNAL | (timeouts_.send_ms > 0 ? MSG_DONTWAIT : 0);
  size_t off = 0;
  while (off < out_.size()) {
    errno = 0;  // a stale EINTR from an earlier spin must not loop us here
    const ssize_t sent =
        ::send(fd_, out_.data() + off, out_.size() - off, flags);
    if (sent > 0) {
      off += static_cast<size_t>(sent);
      continue;
    }
    // send() returning 0 on a stream socket means the connection is gone;
    // falling through to the errno switch would consult a stale errno.
    if (sent == 0) throw std::runtime_error("send: connection lost");
    if (errno == EINTR) continue;
    if (timeouts_.send_ms > 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_fd(POLLOUT, timeouts_.send_ms)) {
        throw TimeoutError("send: timed out after " +
                           std::to_string(timeouts_.send_ms) + " ms");
      }
      continue;
    }
    throw_errno("send");
  }
  out_.clear();
}

RespValue Client::read_reply() {
  for (;;) {
    if (!in_.empty()) {
      RespValue v;
      size_t consumed = 0;
      std::string err;
      const ParseResult r =
          parse_value(in_.data(), in_.size(), &consumed, &v, &err);
      if (r == ParseResult::kOk) {
        in_.consume(consumed);
        return v;
      }
      if (r == ParseResult::kError) {
        throw std::runtime_error("malformed reply: " + err);
      }
    }
    if (timeouts_.recv_ms > 0 && !wait_fd(POLLIN, timeouts_.recv_ms)) {
      throw TimeoutError("recv: timed out after " +
                         std::to_string(timeouts_.recv_ms) + " ms");
    }
    char* dst = in_.reserve(kReadChunk);
    const ssize_t got = ::recv(fd_, dst, kReadChunk, 0);
    if (got > 0) {
      in_.commit(static_cast<size_t>(got), kReadChunk);
      continue;
    }
    in_.commit(0, kReadChunk);
    if (got == 0) throw std::runtime_error("connection closed by server");
    if (errno == EINTR) continue;
    throw_errno("recv");
  }
}

RespValue Client::command(const std::vector<std::string>& args) {
  pipeline(args);
  flush();
  return read_reply();
}

RespValue Client::command_checked(const std::vector<std::string>& args) {
  RespValue v = command(args);
  if (v.is_error()) {
    throw std::runtime_error("server error for '" + args[0] + "': " + v.str);
  }
  return v;
}

bool Client::ping() {
  const RespValue v = command({"PING"});
  return v.type == RespValue::Type::kSimple && v.str == "PONG";
}

void Client::set(std::string_view key, std::string_view value) {
  command_checked({"SET", std::string(key), std::string(value)});
}

bool Client::setnx(std::string_view key, std::string_view value) {
  return command_checked({"SETNX", std::string(key), std::string(value)})
             .integer == 1;
}

bool Client::get(std::string_view key, std::string* out) {
  const RespValue v = command_checked({"GET", std::string(key)});
  if (v.is_nil()) return false;
  if (out) *out = v.str;
  return true;
}

int64_t Client::del(std::string_view key) {
  return command_checked({"DEL", std::string(key)}).integer;
}

int64_t Client::exists(std::string_view key) {
  return command_checked({"EXISTS", std::string(key)}).integer;
}

std::vector<std::optional<std::string>> Client::mget(
    const std::vector<std::string>& keys) {
  std::vector<std::string> args;
  args.reserve(keys.size() + 1);
  args.emplace_back("MGET");
  args.insert(args.end(), keys.begin(), keys.end());
  const RespValue v = command_checked(args);
  std::vector<std::optional<std::string>> out;
  out.reserve(v.elems.size());
  for (const auto& e : v.elems) {
    if (e.is_nil()) {
      out.emplace_back(std::nullopt);
    } else {
      out.emplace_back(e.str);
    }
  }
  return out;
}

int64_t Client::dbsize() { return command_checked({"DBSIZE"}).integer; }

std::string Client::info() { return command_checked({"INFO"}).str; }

}  // namespace hdnh::net
