// RESP2 wire framing (the Redis serialization protocol, v2 subset) for the
// network service layer — see docs/server.md for the protocol contract.
//
// Parsing is incremental and non-destructive: callers hand in whatever
// bytes have arrived; a complete frame parses to a value plus its consumed
// length, an incomplete one reports kNeedMore without consuming anything
// (the caller re-offers the buffer once more bytes land), and a malformed
// or oversized frame reports kError with a reason — the server answers
// with a RESP error and closes, it never crashes or over-allocates on
// attacker-controlled lengths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hdnh::net {

// Hard frame limits: declared lengths beyond these are protocol errors
// *before* any allocation happens. The bulk cap matches the value-log
// store's 16 MiB value ceiling (vkv::LogStore::kMaxValue) so every
// storable value is also servable; oversize payloads for a given store are
// rejected at the command layer with the store's own limits.
inline constexpr size_t kMaxBulkLen = 16u << 20;   // bytes per bulk string
inline constexpr size_t kMaxArrayLen = 64 * 1024;  // elements per array
inline constexpr size_t kMaxInlineLen = 64 * 1024; // inline command line
inline constexpr int kMaxParseDepth = 8;           // nested arrays

struct RespValue {
  enum class Type { kSimple, kError, kInteger, kBulk, kNil, kArray };
  Type type = Type::kNil;
  std::string str;               // kSimple / kError / kBulk payload
  int64_t integer = 0;           // kInteger
  std::vector<RespValue> elems;  // kArray

  bool is_error() const { return type == Type::kError; }
  bool is_nil() const { return type == Type::kNil; }
};

enum class ParseResult { kOk, kNeedMore, kError };

// Parse one complete RESP value from data[0, len). On kOk, *consumed is
// the frame's byte count and *out holds the value. On kNeedMore nothing
// was consumed. On kError, *err (optional) explains the rejection.
ParseResult parse_value(const char* data, size_t len, size_t* consumed,
                        RespValue* out, std::string* err = nullptr);

// Server-side request framing: a RESP array of bulk strings, with the
// redis-compatible inline fallback (a bare "PING\r\n" line split on
// whitespace). An empty inline line parses to kOk with empty *args — the
// caller skips it, as redis does.
ParseResult parse_request(const char* data, size_t len, size_t* consumed,
                          std::vector<std::string>* args,
                          std::string* err = nullptr);

// ---- serializers: append one reply element's wire form to *out ----
void append_simple(std::string* out, std::string_view s);   // +s\r\n
void append_error(std::string* out, std::string_view msg);  // -msg\r\n
void append_integer(std::string* out, int64_t v);           // :v\r\n
void append_bulk(std::string* out, std::string_view payload);
void append_nil(std::string* out);                          // $-1\r\n
void append_array_header(std::string* out, size_t n);       // *n\r\n

// Client-side request framing: one command as an array of bulk strings.
void append_command(std::string* out, const std::vector<std::string>& args);

}  // namespace hdnh::net
