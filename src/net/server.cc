#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "common/clock.h"
#include "net/buffer.h"
#include "net/repl.h"
#include "net/resp.h"
#include "obs/obs.h"

namespace hdnh::net {

namespace {

constexpr size_t kReadChunk = 16 * 1024;

int set_nonblocking_listener(const std::string& bind_addr, uint16_t port,
                             uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("socket: " + std::string(strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad bind address: " + bind_addr);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = strerror(errno);
    ::close(fd);
    throw std::runtime_error("bind " + bind_addr + ":" + std::to_string(port) +
                             ": " + err);
  }
  if (::listen(fd, 1024) != 0) {
    const std::string err = strerror(errno);
    ::close(fd);
    throw std::runtime_error("listen: " + err);
  }
  sockaddr_in actual{};
  socklen_t alen = sizeof(actual);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &alen) == 0) {
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

Cmd lookup_cmd(std::string& word) {
  for (char& ch : word) {
    if (ch >= 'a' && ch <= 'z') ch = static_cast<char>(ch - 'a' + 'A');
  }
  if (word == "GET") return Cmd::kGet;
  if (word == "SET") return Cmd::kSet;
  if (word == "SETNX") return Cmd::kSetnx;
  if (word == "DEL") return Cmd::kDel;
  if (word == "MGET") return Cmd::kMget;
  if (word == "EXISTS") return Cmd::kExists;
  if (word == "DBSIZE") return Cmd::kDbsize;
  if (word == "PING") return Cmd::kPing;
  if (word == "INFO") return Cmd::kInfo;
  if (word == "COMMAND") return Cmd::kCommand;
  if (word == "QUIT") return Cmd::kQuit;
  if (word == "SHUTDOWN") return Cmd::kShutdown;
  if (word == "SLOWLOG") return Cmd::kSlowlog;
  if (word == "HOTKEYS") return Cmd::kHotkeys;
  if (word == "LATENCY") return Cmd::kLatency;
  if (word == "METRICS") return Cmd::kMetrics;
  if (word == "SHARDS") return Cmd::kShards;
  if (word == "RESHARD") return Cmd::kReshard;
  if (word == "REPLCONF") return Cmd::kReplconf;
  if (word == "REPLSTREAM") return Cmd::kReplstream;
  if (word == "REPLACK") return Cmd::kReplack;
  if (word == "REPLSEQ") return Cmd::kReplseq;
  if (word == "GETAT") return Cmd::kGetat;
  if (word == "PROMOTE") return Cmd::kPromote;
  return Cmd::kUnknown;
}

// Strict decimal u64: digits only, no sign, overflow rejected.
bool parse_u64(const std::string& s, uint64_t* out) {
  if (s.empty() || s.size() > 20) return false;
  uint64_t v = 0;
  for (const char ch : s) {
    if (ch < '0' || ch > '9') return false;
    const uint64_t next = v * 10 + static_cast<uint64_t>(ch - '0');
    if (next < v) return false;
    v = next;
  }
  *out = v;
  return true;
}

// 32-hex-char digest of the two key-digest halves, as SLOWLOG/HOTKEYS
// print them.
std::string digest_hex(uint64_t d0, uint64_t d1) {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(d0),
                static_cast<unsigned long long>(d1));
  return std::string(buf);
}

}  // namespace

const char* cmd_name(Cmd c) {
  switch (c) {
    case Cmd::kGet: return "get";
    case Cmd::kSet: return "set";
    case Cmd::kSetnx: return "setnx";
    case Cmd::kDel: return "del";
    case Cmd::kMget: return "mget";
    case Cmd::kExists: return "exists";
    case Cmd::kDbsize: return "dbsize";
    case Cmd::kPing: return "ping";
    case Cmd::kInfo: return "info";
    case Cmd::kCommand: return "command";
    case Cmd::kQuit: return "quit";
    case Cmd::kShutdown: return "shutdown";
    case Cmd::kSlowlog: return "slowlog";
    case Cmd::kHotkeys: return "hotkeys";
    case Cmd::kLatency: return "latency";
    case Cmd::kMetrics: return "metrics";
    case Cmd::kShards: return "shards";
    case Cmd::kReshard: return "reshard";
    case Cmd::kReplconf: return "replconf";
    case Cmd::kReplstream: return "replstream";
    case Cmd::kReplack: return "replack";
    case Cmd::kReplseq: return "replseq";
    case Cmd::kGetat: return "getat";
    case Cmd::kPromote: return "promote";
    case Cmd::kUnknown: return "unknown";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Internal structures
// ---------------------------------------------------------------------------

struct Server::Conn {
  int fd = -1;
  uint64_t serial = 0;           // reactor-unique; guards async fd reuse
  IoBuffer in;
  IoBuffer out;
  bool want_write = false;       // EPOLLOUT currently registered
  bool close_after_flush = false;
  // An async command's reply is outstanding: later frames stay buffered
  // in `in` (RESP replies are ordered) until deliver_async resumes us.
  bool async_pending = false;
  // A completed REPLSTREAM handshake: once the +OK drains, the fd leaves
  // this reactor and becomes a ReplLog sink streaming from repl_from_seq.
  bool detach_repl = false;
  uint64_t repl_from_seq = 0;
};

struct Server::Reactor {
  uint32_t id = 0;
  int epfd = -1;
  int wake_fd = -1;
  std::thread thread;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;
  uint64_t next_serial = 1;

  // Replies produced off-thread (the RESHARD worker) and handed back to
  // this reactor through wake_fd; (fd, serial) must both match the live
  // connection or the reply is dropped (the peer left mid-flight).
  struct AsyncReply {
    int fd;
    uint64_t serial;
    std::string reply;
  };
  std::mutex done_mu;
  std::vector<AsyncReply> done;

  // Written by the reactor thread, read by scrapers (INFO, gauges).
  std::array<std::atomic<uint64_t>, kCmdCount> cmd_counts{};
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> closed{0};
  std::atomic<uint64_t> proto_errors{0};
  std::atomic<uint64_t> table_full{0};

  // Latency histograms: recorded by the reactor, merged by scrapers; the
  // mutex is uncontended except during a scrape.
  mutable std::mutex hist_mu;
  std::vector<Histogram> hist{kCmdCount};

  // Per-reactor scratch (reply serialization, MGET batch staging).
  std::string reply;
  std::string value;
  std::vector<std::string> args;
  std::vector<std::string_view> mkeys;
  std::vector<std::string> mvals;
  std::vector<uint8_t> mfound;
};

namespace {
// wait()/request_stop() rendezvous, keyed by server instance. A plain
// member would do, but the header stays free of <condition_variable>.
struct StopGate {
  std::mutex mu;
  std::condition_variable cv;
};
std::mutex g_gates_mu;
std::unordered_map<const void*, std::shared_ptr<StopGate>> g_gates;

std::shared_ptr<StopGate> gate_for(const void* key) {
  std::lock_guard<std::mutex> lock(g_gates_mu);
  auto& g = g_gates[key];
  if (!g) g = std::make_shared<StopGate>();
  return g;
}
void drop_gate(const void* key) {
  std::lock_guard<std::mutex> lock(g_gates_mu);
  g_gates.erase(key);
}
}  // namespace

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

Server::Server(KvStore& store, ServerOptions opts)
    : store_(store), opts_(std::move(opts)) {
  init_reactors();
}

Server::Server(HashTable& table, ServerOptions opts)
    : owned_store_(std::make_unique<FixedTableKv>(table)),
      store_(*owned_store_),
      opts_(std::move(opts)) {
  init_reactors();
}

void Server::init_reactors() {
  if (opts_.threads == 0) opts_.threads = 1;
  listen_fd_ = set_nonblocking_listener(opts_.bind, opts_.port, &port_);
  reactors_.reserve(opts_.threads);
  for (uint32_t i = 0; i < opts_.threads; ++i) {
    auto r = std::make_unique<Reactor>();
    r->id = i;
    r->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    r->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (r->epfd < 0 || r->wake_fd < 0) {
      throw std::runtime_error("epoll/eventfd: " + std::string(strerror(errno)));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = r->wake_fd;
    ::epoll_ctl(r->epfd, EPOLL_CTL_ADD, r->wake_fd, &ev);

    // EPOLLEXCLUSIVE: the kernel wakes one reactor per pending accept, so
    // the listener needs no dispatcher thread. Pre-4.5 kernels reject the
    // flag; fall back to thundering-herd wakeups (correct, just noisier).
    ev.events = EPOLLIN | EPOLLEXCLUSIVE;
    ev.data.fd = listen_fd_;
    if (::epoll_ctl(r->epfd, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
      ev.events = EPOLLIN;
      ::epoll_ctl(r->epfd, EPOLL_CTL_ADD, listen_fd_, &ev);
    }
    reactors_.push_back(std::move(r));
  }
  register_gauges();
}

Server::~Server() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (auto& r : reactors_) {
    if (r->wake_fd >= 0) ::close(r->wake_fd);
    if (r->epfd >= 0) ::close(r->epfd);
  }
  for (const uint64_t id : obs_gauges_) obs::Metrics::remove_gauge(id);
  drop_gate(this);
}

void Server::register_gauges() {
  if constexpr (!obs::kCompiledIn) return;
  obs_label_ = "port=\"" + std::to_string(port_) + "\"";
  obs_gauges_.push_back(obs::Metrics::add_gauge(
      "hdnh_net_connected_clients", obs_label_,
      "Currently open client connections",
      [this] { return static_cast<double>(counters().active_connections); }));
  obs_gauges_.push_back(obs::Metrics::add_gauge(
      "hdnh_net_connections_total", obs_label_,
      "Client connections accepted since start",
      [this] { return static_cast<double>(counters().connections_accepted); }));
  obs_gauges_.push_back(obs::Metrics::add_gauge(
      "hdnh_net_protocol_errors_total", obs_label_,
      "Malformed or oversized RESP frames rejected",
      [this] { return static_cast<double>(counters().protocol_errors); }));
  obs_gauges_.push_back(obs::Metrics::add_gauge(
      "hdnh_net_table_full_total", obs_label_,
      "Commands answered with -ERR table full",
      [this] { return static_cast<double>(counters().table_full_errors); }));
  for (uint32_t i = 0; i < kCmdCount; ++i) {
    obs_gauges_.push_back(obs::Metrics::add_gauge(
        "hdnh_net_commands_total",
        obs_label_ + ",cmd=\"" + cmd_name(static_cast<Cmd>(i)) + "\"",
        "Commands processed by the server, per command",
        [this, i] {
          uint64_t n = 0;
          for (const auto& r : reactors_) {
            n += r->cmd_counts[i].load(std::memory_order_relaxed);
          }
          return static_cast<double>(n);
        }));
  }
}

void Server::start() {
  if (started_.exchange(true)) return;
  running_.store(true, std::memory_order_release);
  start_ns_ = now_ns();
  for (auto& r : reactors_) {
    r->thread = std::thread([this, rp = r.get()] { reactor_loop(*rp); });
  }
}

bool Server::running() const {
  return running_.load(std::memory_order_acquire);
}

void Server::wait() {
  auto gate = gate_for(this);
  std::unique_lock<std::mutex> lock(gate->mu);
  gate->cv.wait(lock, [this] { return !running(); });
}

void Server::stop() {
  // Phase 1 (request): flip the flag and wake every reactor. Also what a
  // SHUTDOWN command triggers from inside a reactor thread.
  running_.store(false, std::memory_order_release);
  {
    auto gate = gate_for(this);
    std::lock_guard<std::mutex> lock(gate->mu);
    gate->cv.notify_all();
  }
  for (auto& r : reactors_) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t ignored = ::write(r->wake_fd, &one, sizeof(one));
  }
  // Phase 2 (join): only meaningful from outside the reactors.
  if (!started_.load()) return;
  // The reshard worker posts into a reactor's mailbox/wake_fd, so it must
  // be gone before the reactors (and their fds) are torn down.
  {
    std::lock_guard<std::mutex> lock(reshard_mu_);
    if (reshard_thread_.joinable()) reshard_thread_.join();
  }
  for (auto& r : reactors_) {
    if (r->thread.joinable() &&
        r->thread.get_id() != std::this_thread::get_id()) {
      r->thread.join();
    }
  }
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void Server::reactor_loop(Reactor& r) {
  epoll_event evs[128];
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(r.epfd, evs, 128, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = evs[i].data.fd;
      if (fd == r.wake_fd) {
        uint64_t junk;
        while (::read(r.wake_fd, &junk, sizeof(junk)) > 0) {
        }
        deliver_async(r);
        continue;  // loop condition re-checked above
      }
      if (fd == listen_fd_) {
        accept_ready(r);
        continue;
      }
      auto it = r.conns.find(fd);
      if (it == r.conns.end()) continue;
      Conn* c = it->second.get();
      if (evs[i].events & (EPOLLHUP | EPOLLERR)) {
        close_conn(r, *c);
        continue;
      }
      if (evs[i].events & EPOLLIN) {
        conn_readable(r, *c);
        // The handler may have closed the connection; re-resolve before
        // touching it again.
        it = r.conns.find(fd);
        if (it == r.conns.end()) continue;
        c = it->second.get();
      }
      if (evs[i].events & EPOLLOUT) conn_writable(r, *c);
    }
  }
  // Drain: close every connection this reactor owns.
  for (auto& [fd, c] : r.conns) {
    ::epoll_ctl(r.epfd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    r.closed.fetch_add(1, std::memory_order_relaxed);
  }
  r.conns.clear();
}

void Server::accept_ready(Reactor& r) {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // EMFILE etc.: shed and retry on the next wakeup
    }
    if (opts_.tcp_nodelay) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->serial = r.next_serial++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(r.epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    r.conns.emplace(fd, std::move(conn));
    r.accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::close_conn(Reactor& r, Conn& c) {
  ::epoll_ctl(r.epfd, EPOLL_CTL_DEL, c.fd, nullptr);
  ::close(c.fd);
  r.closed.fetch_add(1, std::memory_order_relaxed);
  r.conns.erase(c.fd);  // frees c
}

void Server::conn_readable(Reactor& r, Conn& c) {
  for (;;) {
    char* dst = c.in.reserve(kReadChunk);
    const ssize_t got = ::recv(c.fd, dst, kReadChunk, 0);
    if (got > 0) {
      c.in.commit(static_cast<size_t>(got), kReadChunk);
      if (static_cast<size_t>(got) < kReadChunk) break;
      continue;
    }
    c.in.commit(0, kReadChunk);
    if (got == 0) {
      close_conn(r, c);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_conn(r, c);
    return;
  }

  // Parse-and-execute until the input no longer holds a complete frame.
  // An async command in flight pauses execution (its reply must go out
  // first); deliver_async re-enters here to drain what queued up.
  while (!c.close_after_flush && !c.async_pending && !c.detach_repl) {
    size_t consumed = 0;
    std::string perr;
    const ParseResult pr = parse_request(c.in.data(), c.in.size(), &consumed,
                                         &r.args, &perr);
    if (pr == ParseResult::kNeedMore) break;
    if (pr == ParseResult::kError) {
      r.proto_errors.fetch_add(1, std::memory_order_relaxed);
      r.reply.clear();
      append_error(&r.reply, "ERR protocol error: " + perr);
      c.out.append(r.reply);
      c.close_after_flush = true;
      break;
    }
    c.in.consume(consumed);
    if (r.args.empty()) continue;  // blank inline line
    execute(r, c, r.args);
  }
  flush_output(r, c);
}

void Server::conn_writable(Reactor& r, Conn& c) { flush_output(r, c); }

void Server::deliver_async(Reactor& r) {
  std::vector<Reactor::AsyncReply> done;
  {
    std::lock_guard<std::mutex> lock(r.done_mu);
    done.swap(r.done);
  }
  for (auto& d : done) {
    auto it = r.conns.find(d.fd);
    if (it == r.conns.end()) continue;  // peer left while the op ran
    Conn& c = *it->second;
    if (c.serial != d.serial || !c.async_pending) continue;  // fd reused
    c.async_pending = false;
    c.out.append(d.reply);
    // Resume the connection: flush the reply and execute any frames the
    // client pipelined behind the async command (recv inside will just
    // hit EAGAIN if nothing new arrived).
    conn_readable(r, c);
  }
}

void Server::flush_output(Reactor& r, Conn& c) {
  while (!c.out.empty()) {
    const ssize_t sent =
        ::send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
    if (sent > 0) {
      c.out.consume(static_cast<size_t>(sent));
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (c.out.size() > opts_.max_output_bytes) {
        // The peer stopped reading; shed it rather than buffer unboundedly.
        close_conn(r, c);
        return;
      }
      if (!c.want_write) {
        c.want_write = true;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT;
        ev.data.fd = c.fd;
        ::epoll_ctl(r.epfd, EPOLL_CTL_MOD, c.fd, &ev);
      }
      return;
    }
    close_conn(r, c);
    return;
  }
  // Output drained.
  if (c.want_write) {
    c.want_write = false;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = c.fd;
    ::epoll_ctl(r.epfd, EPOLL_CTL_MOD, c.fd, &ev);
  }
  if (c.detach_repl) {
    // The REPLSTREAM +OK is on the wire; the connection now belongs to the
    // replication log, not this reactor.
    detach_repl_conn(r, c);
    return;
  }
  if (c.close_after_flush) close_conn(r, c);
}

void Server::detach_repl_conn(Reactor& r, Conn& c) {
  const int fd = c.fd;
  const uint64_t from_seq = c.repl_from_seq;
  // Input already read off the socket (REPLACK frames the replica
  // pipelined behind its handshake) travels with the fd.
  std::string residual(c.in.view());
  ::epoll_ctl(r.epfd, EPOLL_CTL_DEL, fd, nullptr);
  r.closed.fetch_add(1, std::memory_order_relaxed);
  r.conns.erase(fd);  // frees the Conn; the fd stays open
  if (repl_log_) {
    repl_log_->attach_sink(fd, from_seq, std::move(residual));
  } else {
    ::close(fd);
  }
}

// ---------------------------------------------------------------------------
// Command execution: Status -> RESP
// ---------------------------------------------------------------------------

namespace {

void append_wrong_args(std::string* out, const char* cmd) {
  append_error(out, std::string("ERR wrong number of arguments for '") + cmd +
                        "' command");
}

// The Status->RESP error mapping of API v2. kOk/kNotFound/kExists never
// reach here — they are command-specific replies, not errors.
void append_status_error(std::string* out, const Status& s,
                         std::atomic<uint64_t>& table_full_counter) {
  switch (s.code()) {
    case StatusCode::kTableFull:
      table_full_counter.fetch_add(1, std::memory_order_relaxed);
      append_error(out, "ERR table full");
      break;
    case StatusCode::kLogFull:
      // Same capacity-exhaustion bucket as table full for the counters.
      table_full_counter.fetch_add(1, std::memory_order_relaxed);
      append_error(out, "ERR log full");
      break;
    case StatusCode::kInvalidArgument:
      append_error(out, "ERR " + (s.message().empty()
                                      ? std::string("invalid argument")
                                      : s.message()));
      break;
    case StatusCode::kRetry:
      append_error(out, "ERR retry: transient conflict, please retry");
      break;
    case StatusCode::kIOError:
      append_error(out, "ERR io error: " + s.message());
      break;
    default:
      append_error(out, "ERR " + s.to_string());
      break;
  }
}

}  // namespace

void Server::execute(Reactor& r, Conn& c, std::vector<std::string>& args) {
  const uint64_t t0 = opts_.measure_latency ? now_ns() : 0;
  const Cmd cmd = lookup_cmd(args[0]);
  r.cmd_counts[static_cast<uint32_t>(cmd)].fetch_add(
      1, std::memory_order_relaxed);
  std::string& reply = r.reply;
  reply.clear();

  // A replica is read-only until PROMOTE flips it: acknowledged writes
  // must flow through exactly one primary or the failover oracle has no
  // single log to check against.
  if (replica_ && !replica_->promoted() &&
      (cmd == Cmd::kSet || cmd == Cmd::kSetnx || cmd == Cmd::kDel ||
       cmd == Cmd::kReshard)) {
    append_error(&reply, "READONLY replica; writes rejected until PROMOTE");
    c.out.append(reply);
    if (t0) {
      std::lock_guard<std::mutex> lock(r.hist_mu);
      r.hist[static_cast<uint32_t>(cmd)].record(now_ns() - t0);
    }
    return;
  }

  // The Status surface guarantees no scheme exception reaches this frame;
  // the catch below is a last-ditch guard for unexpected failures (e.g.
  // reply allocation) so one connection's error cannot take the server down.
  try {
    switch (cmd) {
      case Cmd::kGet: {
        if (args.size() != 2) {
          append_wrong_args(&reply, "get");
          break;
        }
        const Status s = store_.get(args[1], &r.value);
        if (s.ok()) {
          append_bulk(&reply, r.value);
        } else if (s == StatusCode::kNotFound) {
          append_nil(&reply);
        } else {
          append_status_error(&reply, s, r.table_full);
        }
        break;
      }
      case Cmd::kSet: {
        if (args.size() != 3) {
          append_wrong_args(&reply, "set");
          break;
        }
        // Limits derive from the store, never hard-coded: a fixed-record
        // table rejects 16-byte values here, a value-log store takes MiBs.
        if (args[1].size() > store_.max_key_len()) {
          append_error(&reply,
                       "ERR key too long (max " +
                           std::to_string(store_.max_key_len()) + " bytes)");
          break;
        }
        if (args[2].size() > store_.max_value_len()) {
          append_error(&reply,
                       "ERR value too long (max " +
                           std::to_string(store_.max_value_len()) + " bytes)");
          break;
        }
        Status s;
        if (repl_log_) {
          // Store mutation and log append under one key stripe: the log's
          // per-key order matches the store's, and the append ships the
          // frame to every sink before the +OK below is even queued.
          std::lock_guard<std::mutex> lk(repl_log_->key_stripe(args[1]));
          s = store_.put(args[1], args[2]);
          if (s.ok()) repl_log_->append({"SET", args[1], args[2]});
        } else {
          s = store_.put(args[1], args[2]);
        }
        if (s.ok()) {
          append_simple(&reply, "OK");
        } else {
          append_status_error(&reply, s, r.table_full);
        }
        break;
      }
      case Cmd::kSetnx: {
        if (args.size() != 3) {
          append_wrong_args(&reply, "setnx");
          break;
        }
        if (args[1].size() > store_.max_key_len()) {
          append_error(&reply,
                       "ERR key too long (max " +
                           std::to_string(store_.max_key_len()) + " bytes)");
          break;
        }
        if (args[2].size() > store_.max_value_len()) {
          append_error(&reply,
                       "ERR value too long (max " +
                           std::to_string(store_.max_value_len()) + " bytes)");
          break;
        }
        Status s;
        if (repl_log_) {
          std::lock_guard<std::mutex> lk(repl_log_->key_stripe(args[1]));
          s = store_.insert(args[1], args[2]);
          // The replica sees the write the insert actually performed, as a
          // plain SET (insert-if-absent already resolved on the primary).
          if (s.ok()) repl_log_->append({"SET", args[1], args[2]});
        } else {
          s = store_.insert(args[1], args[2]);
        }
        if (s.ok()) {
          append_integer(&reply, 1);
        } else if (s == StatusCode::kExists) {
          append_integer(&reply, 0);
        } else {
          append_status_error(&reply, s, r.table_full);
        }
        break;
      }
      case Cmd::kDel: {
        if (args.size() < 2) {
          append_wrong_args(&reply, "del");
          break;
        }
        int64_t removed = 0;
        for (size_t i = 1; i < args.size(); ++i) {
          if (repl_log_) {
            std::lock_guard<std::mutex> lk(repl_log_->key_stripe(args[i]));
            if (store_.erase(args[i]).ok()) {
              ++removed;
              repl_log_->append({"DEL", args[i]});
            }
          } else if (store_.erase(args[i]).ok()) {
            ++removed;
          }
        }
        append_integer(&reply, removed);
        break;
      }
      case Cmd::kExists: {
        if (args.size() < 2) {
          append_wrong_args(&reply, "exists");
          break;
        }
        int64_t found = 0;
        for (size_t i = 1; i < args.size(); ++i) {
          if (store_.get(args[i], nullptr).ok()) ++found;
        }
        append_integer(&reply, found);
        break;
      }
      case Cmd::kMget: {
        if (args.size() < 2) {
          append_wrong_args(&reply, "mget");
          break;
        }
        // One store multiget for the whole request: the batch hits the
        // phased pipeline (sharded regrouping, OCF prefilter, NVM
        // read-ahead) instead of n serial probes.
        const size_t n = args.size() - 1;
        r.mkeys.resize(n);
        r.mvals.resize(n);
        r.mfound.assign(n, 0);
        for (size_t i = 0; i < n; ++i) r.mkeys[i] = args[i + 1];
        store_.multiget(r.mkeys.data(), n, r.mvals.data(), r.mfound.data());
        append_array_header(&reply, n);
        for (size_t i = 0; i < n; ++i) {
          if (r.mfound[i]) {
            append_bulk(&reply, r.mvals[i]);
          } else {
            append_nil(&reply);
          }
        }
        break;
      }
      case Cmd::kDbsize:
        append_integer(&reply, static_cast<int64_t>(store_.size()));
        break;
      case Cmd::kPing:
        if (args.size() == 1) {
          append_simple(&reply, "PONG");
        } else {
          append_bulk(&reply, args[1]);
        }
        break;
      case Cmd::kInfo:
        append_bulk(&reply, info_text());
        break;
      case Cmd::kCommand:
        // Enough COMMAND support for redis-cli handshakes: the top-level
        // form lists our verbs; subcommand forms (DOCS, INFO, ...) answer
        // an empty array.
        if (args.size() > 1) {
          append_array_header(&reply, 0);
        } else {
          append_array_header(&reply, kCmdCount - 1);
          for (uint32_t i = 0; i + 1 < kCmdCount; ++i) {
            append_bulk(&reply, cmd_name(static_cast<Cmd>(i)));
          }
        }
        break;
      case Cmd::kQuit:
        append_simple(&reply, "OK");
        c.close_after_flush = true;
        break;
      case Cmd::kShutdown: {
        append_simple(&reply, "OK");
        c.close_after_flush = true;
        // Request-only: joining must happen on the owner's thread (stop()).
        running_.store(false, std::memory_order_release);
        auto gate = gate_for(this);
        std::lock_guard<std::mutex> lock(gate->mu);
        gate->cv.notify_all();
        for (auto& other : reactors_) {
          const uint64_t one = 1;
          [[maybe_unused]] ssize_t ignored =
              ::write(other->wake_fd, &one, sizeof(one));
        }
        break;
      }
      case Cmd::kSlowlog: {
        // SLOWLOG GET [count] | RESET | LEN, Redis-shaped: GET returns an
        // array of entries [id, ts_ns, latency_ns, op, key_digest, shard].
        std::string sub = args.size() > 1 ? args[1] : std::string("GET");
        for (char& ch : sub) {
          if (ch >= 'a' && ch <= 'z') ch = static_cast<char>(ch - 'a' + 'A');
        }
        if (sub == "RESET") {
          obs::SlowLog::reset();
          append_simple(&reply, "OK");
        } else if (sub == "LEN") {
          append_integer(&reply, static_cast<int64_t>(obs::SlowLog::len()));
        } else if (sub == "GET") {
          uint32_t count = obs::SlowLog::kCapacity;
          if (args.size() > 2) {
            const long v = std::atol(args[2].c_str());
            if (v <= 0) {
              append_error(&reply, "ERR invalid SLOWLOG GET count");
              break;
            }
            count = static_cast<uint32_t>(v);
          }
          const auto entries = obs::SlowLog::entries(count);
          append_array_header(&reply, entries.size());
          for (const auto& e : entries) {
            append_array_header(&reply, 6);
            append_integer(&reply, static_cast<int64_t>(e.id));
            append_integer(&reply, static_cast<int64_t>(e.ts_ns));
            append_integer(&reply, static_cast<int64_t>(e.latency_ns));
            append_bulk(&reply, obs::op_name(e.op));
            append_bulk(&reply, digest_hex(e.d0, e.d1));
            append_integer(&reply, static_cast<int64_t>(e.shard));
          }
        } else {
          append_error(&reply, "ERR unknown SLOWLOG subcommand '" + args[1] +
                                   "' (GET|RESET|LEN)");
        }
        break;
      }
      case Cmd::kHotkeys: {
        // HOTKEYS [k]: top-k key digests with approximate counts, hottest
        // first, as an array of [digest, count] pairs.
        uint32_t k = 8;
        if (args.size() > 1) {
          const long v = std::atol(args[1].c_str());
          if (v <= 0 || v > 1024) {
            append_error(&reply, "ERR invalid HOTKEYS count (1..1024)");
            break;
          }
          k = static_cast<uint32_t>(v);
        }
        const auto hot = obs::HeavyHitters::top(k);
        append_array_header(&reply, hot.size());
        for (const auto& e : hot) {
          append_array_header(&reply, 2);
          append_bulk(&reply, digest_hex(e.d0, e.d1));
          append_integer(&reply, static_cast<int64_t>(e.count));
        }
        break;
      }
      case Cmd::kLatency: {
        // Windowed (not lifetime) store-op latency: one [op, count, p50,
        // p99, p999] row per op kind. An idle window reads zeros.
        obs::Windows::rotate_if_stale(2'000'000'000);
        obs::Windows::Snapshot snap;
        obs::Windows::snapshot(obs::Windows::kEpochs, &snap);
        append_array_header(&reply, obs::kOpCount);
        for (uint32_t i = 0; i < obs::kOpCount; ++i) {
          const Histogram& h = snap.latency[i];
          append_array_header(&reply, 5);
          append_bulk(&reply, obs::op_name(static_cast<obs::Op>(i)));
          append_integer(&reply, static_cast<int64_t>(snap.counts[i]));
          append_integer(&reply, static_cast<int64_t>(h.percentile(0.5)));
          append_integer(&reply, static_cast<int64_t>(h.percentile(0.99)));
          append_integer(&reply, static_cast<int64_t>(h.percentile(0.999)));
        }
        break;
      }
      case Cmd::kMetrics:
        // The full Prometheus exposition, for anything that can speak RESP
        // but not HTTP (INFO stays compact).
        append_bulk(&reply, obs::Metrics::prometheus());
        break;
      case Cmd::kShards: {
        // SHARDS: the extendible directory, as three nested arrays —
        //   1) meta   [global_depth, epoch, shard_count, max_shards,
        //              split_active]
        //   2) entries (2^global_depth shard ids, top-hash-bits order)
        //   3) shards  one [id, local_depth, items, heat_ops] per shard
        ShardAdmin* admin = store_.shard_admin();
        if (!admin) {
          append_error(&reply, "ERR store is not sharded");
          break;
        }
        const ShardAdmin::Directory dir = admin->shard_directory();
        append_array_header(&reply, 3);
        append_array_header(&reply, 5);
        append_integer(&reply, dir.global_depth);
        append_integer(&reply, static_cast<int64_t>(dir.epoch));
        append_integer(&reply, dir.shard_count);
        append_integer(&reply, dir.max_shards);
        append_integer(&reply, dir.split_active ? 1 : 0);
        append_array_header(&reply, dir.entries.size());
        for (const uint8_t e : dir.entries) append_integer(&reply, e);
        append_array_header(&reply, dir.shards.size());
        for (const auto& s : dir.shards) {
          append_array_header(&reply, 4);
          append_integer(&reply, s.id);
          append_integer(&reply, s.local_depth);
          append_integer(&reply, static_cast<int64_t>(s.items));
          append_integer(&reply, static_cast<int64_t>(s.heat_ops));
        }
        break;
      }
      case Cmd::kReshard: {
        // RESHARD <shard>: split that shard online; +OK once the split is
        // published and cleaned, -ERR with the refusal otherwise. The
        // split can take seconds on a big shard, so it runs on a worker
        // thread and the reply comes back through deliver_async — the
        // reactor keeps serving its other connections meanwhile.
        if (args.size() != 2) {
          append_error(&reply,
                       "ERR wrong number of arguments (RESHARD <shard>)");
          break;
        }
        ShardAdmin* admin = store_.shard_admin();
        if (!admin) {
          append_error(&reply, "ERR store is not sharded");
          break;
        }
        // Strict decimal parse: digits only (no sign — strtoull would
        // silently wrap a negative), in range for uint32_t.
        errno = 0;
        char* end = nullptr;
        const unsigned long long v =
            args[1].empty() || args[1][0] < '0' || args[1][0] > '9'
                ? 0
                : std::strtoull(args[1].c_str(), &end, 10);
        if (end == nullptr || end == args[1].c_str() || *end != '\0' ||
            errno == ERANGE ||
            v > std::numeric_limits<uint32_t>::max()) {
          append_error(&reply, "ERR invalid shard id '" + args[1] + "'");
          break;
        }
        const uint32_t shard_id = static_cast<uint32_t>(v);
        bool launched = false;
        {
          std::lock_guard<std::mutex> lock(reshard_mu_);
          if (!reshard_busy_.load(std::memory_order_acquire)) {
            if (reshard_thread_.joinable()) reshard_thread_.join();
            reshard_busy_.store(true, std::memory_order_release);
            reshard_thread_ = std::thread([this, rp = &r, fd = c.fd,
                                           serial = c.serial, admin,
                                           shard_id] {
              const Status s = admin->split_shard(shard_id);
              std::string rep;
              if (s.ok()) {
                // Replicas don't replay the split (their directory evolves
                // independently), but the barrier keeps the seq stream a
                // total order across every acknowledged admin event.
                if (repl_log_) {
                  repl_log_->barrier("RESHARD", std::to_string(shard_id));
                }
                append_simple(&rep, "OK");
              } else {
                append_error(&rep, "ERR " + s.to_string());
              }
              {
                std::lock_guard<std::mutex> done_lock(rp->done_mu);
                rp->done.push_back({fd, serial, std::move(rep)});
              }
              const uint64_t one = 1;
              [[maybe_unused]] ssize_t ignored =
                  ::write(rp->wake_fd, &one, sizeof(one));
              reshard_busy_.store(false, std::memory_order_release);
            });
            launched = true;
          }
        }
        if (!launched) {
          append_error(&reply, "ERR reshard already in progress");
          break;
        }
        c.async_pending = true;
        break;
      }
      case Cmd::kReplconf:
        // Replica handshake preamble; accepted and (for now) ignored — the
        // verb exists so the attach protocol has room to grow options.
        append_simple(&reply, "OK");
        break;
      case Cmd::kReplstream: {
        // REPLSTREAM <from_seq>: acknowledge, then (once the +OK drains)
        // hand this connection to the ReplLog as a sink streaming from
        // from_seq. Everything the replica sends afterwards is REPLACK.
        if (args.size() != 2) {
          append_error(&reply,
                       "ERR wrong number of arguments (REPLSTREAM <from_seq>)");
          break;
        }
        uint64_t from_seq = 0;
        if (!parse_u64(args[1], &from_seq)) {
          append_error(&reply, "ERR invalid sequence '" + args[1] + "'");
          break;
        }
        if (from_seq == 0) from_seq = 1;
        if (!repl_log_) {
          append_error(&reply, "ERR replication disabled on this server");
          break;
        }
        if (!repl_log_->can_stream_from(from_seq)) {
          // The ring evicted that tail; a full resync is out of scope, so
          // the replica must restart from an empty store.
          append_error(&reply, "ERR repl log truncated before seq " +
                                   args[1] + " (reseed the replica)");
          break;
        }
        append_simple(&reply, "OK");
        c.detach_repl = true;
        c.repl_from_seq = from_seq;
        break;
      }
      case Cmd::kReplack:
        // Normally consumed by the ReplLog reader on a detached sink; on a
        // live client connection it is a harmless no-op.
        append_simple(&reply, "OK");
        break;
      case Cmd::kReplseq: {
        // [role, last_seq, applied_seq, lag, sinks, connected] — the wire
        // form of the lag gauges, cheap enough to poll per request.
        const char* role = "standalone";
        uint64_t last = 0;
        uint64_t applied = 0;
        uint64_t sinks = 0;
        int64_t connected = 0;
        if (replica_ && !replica_->promoted()) {
          role = "replica";
          last = replica_->last_received_seq();
          applied = replica_->applied_seq();
          connected = replica_->connected() ? 1 : 0;
        } else if (repl_log_) {
          role = replica_ ? "promoted" : "primary";
          last = repl_log_->last_seq();
          applied = repl_log_->min_sink_acked();
        } else if (replica_) {
          role = "promoted";
          last = replica_->last_received_seq();
          applied = replica_->applied_seq();
        }
        if (repl_log_) sinks = repl_log_->sink_count();
        append_array_header(&reply, 6);
        append_bulk(&reply, role);
        append_integer(&reply, static_cast<int64_t>(last));
        append_integer(&reply, static_cast<int64_t>(applied));
        append_integer(&reply,
                       static_cast<int64_t>(last > applied ? last - applied
                                                           : 0));
        append_integer(&reply, static_cast<int64_t>(sinks));
        append_integer(&reply, connected);
        break;
      }
      case Cmd::kGetat: {
        // GETAT <min_seq> <key>: the read-your-writes gate. A client that
        // wrote through the primary at seq S reads from a replica with
        // min_seq=S; until the replica has applied that far it answers
        // -ERR LAGGING (retry or fall back to the primary) instead of
        // serving a stale value.
        if (args.size() != 3) {
          append_error(&reply,
                       "ERR wrong number of arguments (GETAT <min_seq> <key>)");
          break;
        }
        uint64_t min_seq = 0;
        if (!parse_u64(args[1], &min_seq)) {
          append_error(&reply, "ERR invalid sequence '" + args[1] + "'");
          break;
        }
        const uint64_t applied =
            replica_ ? replica_->applied_seq()
                     : (repl_log_ ? repl_log_->last_seq() : 0);
        if ((replica_ || repl_log_) && applied < min_seq) {
          append_error(&reply, "LAGGING applied=" + std::to_string(applied));
          break;
        }
        const Status s = store_.get(args[2], &r.value);
        if (s.ok()) {
          append_bulk(&reply, r.value);
        } else if (s == StatusCode::kNotFound) {
          append_nil(&reply);
        } else {
          append_status_error(&reply, s, r.table_full);
        }
        break;
      }
      case Cmd::kPromote: {
        // PROMOTE: seal the stream, replay the delivered tail, flip
        // writable; replies with the applied seq. The drain can take a
        // couple of recv windows, so it runs on the async worker thread
        // (shared with RESHARD) and the reply returns via deliver_async.
        if (!replica_) {
          append_error(&reply, "ERR not a replica");
          break;
        }
        if (replica_->promoted()) {
          append_simple(&reply, "ALREADY");
          break;
        }
        bool launched = false;
        {
          std::lock_guard<std::mutex> lock(reshard_mu_);
          if (!reshard_busy_.load(std::memory_order_acquire)) {
            if (reshard_thread_.joinable()) reshard_thread_.join();
            reshard_busy_.store(true, std::memory_order_release);
            reshard_thread_ = std::thread([this, rp = &r, fd = c.fd,
                                           serial = c.serial] {
              const uint64_t applied = replica_->promote();
              // Carry the seq forward so a replica chained to this newly
              // writable node attaches where the old stream left off.
              if (repl_log_) repl_log_->set_base(applied);
              std::string rep;
              append_integer(&rep, static_cast<int64_t>(applied));
              {
                std::lock_guard<std::mutex> done_lock(rp->done_mu);
                rp->done.push_back({fd, serial, std::move(rep)});
              }
              const uint64_t one = 1;
              [[maybe_unused]] ssize_t ignored =
                  ::write(rp->wake_fd, &one, sizeof(one));
              reshard_busy_.store(false, std::memory_order_release);
            });
            launched = true;
          }
        }
        if (!launched) {
          append_error(&reply, "ERR admin operation already in progress");
          break;
        }
        c.async_pending = true;
        break;
      }
      case Cmd::kUnknown:
        append_error(&reply, "ERR unknown command '" + args[0] + "'");
        break;
    }
  } catch (const std::exception& e) {
    reply.clear();
    append_error(&reply, std::string("ERR internal: ") + e.what());
    c.close_after_flush = true;
  }

  c.out.append(reply);
  if (t0) {
    std::lock_guard<std::mutex> lock(r.hist_mu);
    r.hist[static_cast<uint32_t>(cmd)].record(now_ns() - t0);
  }
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

Server::Counters Server::counters() const {
  Counters c;
  for (const auto& r : reactors_) {
    c.connections_accepted += r->accepted.load(std::memory_order_relaxed);
    c.connections_closed += r->closed.load(std::memory_order_relaxed);
    c.protocol_errors += r->proto_errors.load(std::memory_order_relaxed);
    c.table_full_errors += r->table_full.load(std::memory_order_relaxed);
    for (uint32_t i = 0; i < kCmdCount; ++i) {
      const uint64_t n = r->cmd_counts[i].load(std::memory_order_relaxed);
      c.per_command[i] += n;
      c.commands_processed += n;
    }
  }
  c.active_connections = c.connections_accepted - c.connections_closed;
  return c;
}

std::vector<Histogram> Server::latency_snapshot() const {
  std::vector<Histogram> merged(kCmdCount);
  for (const auto& r : reactors_) {
    std::lock_guard<std::mutex> lock(r->hist_mu);
    for (uint32_t i = 0; i < kCmdCount; ++i) merged[i].merge(r->hist[i]);
  }
  return merged;
}

std::string Server::info_text() const {
  const Counters c = counters();
  const std::vector<Histogram> lat = latency_snapshot();
  std::string s;
  s += "# Server\r\n";
  s += "server:hdnh_server\r\n";
  s += "store:" + std::string(store_.name()) + "\r\n";
  s += "max_key_len:" + std::to_string(store_.max_key_len()) + "\r\n";
  s += "max_value_len:" + std::to_string(store_.max_value_len()) + "\r\n";
  s += "tcp_port:" + std::to_string(port_) + "\r\n";
  s += "reactor_threads:" + std::to_string(opts_.threads) + "\r\n";
  s += "uptime_seconds:" +
       std::to_string(start_ns_ ? (now_ns() - start_ns_) / 1000000000ull : 0) +
       "\r\n";
  s += "\r\n# Clients\r\n";
  s += "connected_clients:" + std::to_string(c.active_connections) + "\r\n";
  s += "total_connections_received:" +
       std::to_string(c.connections_accepted) + "\r\n";
  s += "\r\n# Stats\r\n";
  s += "total_commands_processed:" + std::to_string(c.commands_processed) +
       "\r\n";
  s += "protocol_errors:" + std::to_string(c.protocol_errors) + "\r\n";
  s += "table_full_errors:" + std::to_string(c.table_full_errors) + "\r\n";
  for (uint32_t i = 0; i < kCmdCount; ++i) {
    if (c.per_command[i] == 0) continue;
    s += "cmd_" + std::string(cmd_name(static_cast<Cmd>(i))) +
         ":calls=" + std::to_string(c.per_command[i]);
    if (lat[i].count() > 0) {
      s += ",p50_ns=" + std::to_string(lat[i].percentile(0.50)) +
           ",p99_ns=" + std::to_string(lat[i].percentile(0.99));
    }
    s += "\r\n";
  }
  if (repl_log_ || replica_) {
    s += "\r\n# Replication\r\n";
    const bool is_replica = replica_ && !replica_->promoted();
    s += std::string("role:") +
         (is_replica ? "replica" : (replica_ ? "promoted" : "primary")) +
         "\r\n";
    if (replica_) {
      s += "repl_applied_seq:" + std::to_string(replica_->applied_seq()) +
           "\r\n";
      s += "repl_received_seq:" +
           std::to_string(replica_->last_received_seq()) + "\r\n";
      s += "repl_connected:" + std::to_string(replica_->connected() ? 1 : 0) +
           "\r\n";
      s += "repl_apply_errors:" + std::to_string(replica_->apply_errors()) +
           "\r\n";
    }
    if (repl_log_) {
      const uint64_t last = repl_log_->last_seq();
      const uint64_t acked = repl_log_->min_sink_acked();
      s += "repl_last_seq:" + std::to_string(last) + "\r\n";
      s += "repl_sinks:" + std::to_string(repl_log_->sink_count()) + "\r\n";
      s += "repl_min_sink_acked:" + std::to_string(acked) + "\r\n";
      s += "repl_sink_lag:" + std::to_string(last > acked ? last - acked : 0) +
           "\r\n";
    }
  }
  s += "\r\n# Store\r\n";
  s += "items:" + std::to_string(store_.size()) + "\r\n";
  char lf[32];
  std::snprintf(lf, sizeof(lf), "%.4f", store_.load_factor());
  s += "load_factor:" + std::string(lf) + "\r\n";
  if constexpr (obs::kCompiledIn) {
    // Compact windowed signal only — the full Prometheus exposition moved
    // to the METRICS command.
    obs::Windows::rotate_if_stale(2'000'000'000);
    obs::Windows::Snapshot snap;
    obs::Windows::snapshot(obs::Windows::kEpochs, &snap);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(snap.window_ns) * 1e-9);
    s += "\r\n# Window\r\n";
    s += "window_seconds:" + std::string(buf) + "\r\n";
    for (uint32_t i = 0; i < obs::kOpCount; ++i) {
      if (snap.counts[i] == 0) continue;
      s += "window_" + std::string(obs::op_name(static_cast<obs::Op>(i))) +
           ":count=" + std::to_string(snap.counts[i]);
      std::snprintf(buf, sizeof(buf), "%.0f", snap.rate(i));
      s += ",rate=" + std::string(buf);
      const Histogram& h = snap.latency[i];
      if (h.count() > 0) {
        s += ",p50_ns=" + std::to_string(h.percentile(0.50)) +
             ",p99_ns=" + std::to_string(h.percentile(0.99));
      }
      s += "\r\n";
    }
  }
  return s;
}

}  // namespace hdnh::net
