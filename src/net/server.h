// hdnh::net::Server — the epoll-based TCP front end of the store.
//
// Threading model (docs/server.md): reactor-per-thread. Each of
// `opts.threads` reactors owns one epoll instance; the shared listening
// socket is registered in every reactor with EPOLLEXCLUSIVE, so the kernel
// wakes exactly one reactor per pending accept and connections distribute
// across reactors without a dispatcher thread. A connection lives and dies
// on the reactor that accepted it: all of its I/O, parsing, and command
// execution happen there, so per-connection state needs no locks. The
// store itself is the concurrent object (HashTable ops are thread-safe),
// which is what lets N reactors execute commands in parallel.
//
// I/O is non-blocking throughout, with per-connection input/output byte
// queues (net/buffer.h) absorbing partial reads and writes; EPOLLOUT
// interest is registered only while output is actually backed up.
//
// Commands are the RESP2 subset GET / SET / SETNX / DEL / MGET / EXISTS /
// DBSIZE / PING / INFO / COMMAND (+ QUIT / SHUTDOWN), plus the telemetry
// verbs SLOWLOG GET|RESET|LEN, HOTKEYS [k], LATENCY (windowed
// percentiles), and METRICS (the full Prometheus scrape; INFO stays
// compact), plus the shard admin verbs SHARDS (directory dump) and
// RESHARD <shard> (online split) on elastically sharded stores, plus the
// replication verbs (net/repl.h, docs/server.md "Replication"): REPLCONF /
// REPLSTREAM <from_seq> (a replica's attach handshake — on +OK the
// connection is detached from its reactor and handed to the ReplLog as a
// sink), REPLSEQ (role + seq/lag snapshot), GETAT <min_seq> <key> (the
// read-your-writes gate), and PROMOTE (seal the stream, replay the tail,
// flip writable; runs on the async worker like RESHARD). A server given a
// ReplicaSession rejects mutations with -READONLY until promoted.
// Execution speaks the
// KvStore surface of API v2: outcomes map to RESP replies
// (kNotFound -> nil, kTableFull -> "-ERR table full", ...) and no scheme
// exception can cross into the event loop. Key/value size limits — and the
// error messages that report them — derive from the store
// (max_key_len/max_value_len), so a value-log-backed store serves multi-KiB
// payloads through the same handlers that reject a 16-byte value on a
// fixed-record table. MGET routes through the store's multiget, so a
// batched network read hits the phased pipeline (one resize-lock
// acquisition, OCF prefilter, NVM reads overlapped).
#pragma once

#include <atomic>
#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/kv_store.h"
#include "common/histogram.h"

namespace hdnh::net {

// Commands, in the order counters/INFO report them.
enum class Cmd : uint8_t {
  kGet = 0,
  kSet,
  kSetnx,
  kDel,
  kMget,
  kExists,
  kDbsize,
  kPing,
  kInfo,
  kCommand,
  kQuit,
  kShutdown,
  kSlowlog,
  kHotkeys,
  kLatency,
  kMetrics,
  kShards,
  kReshard,
  kReplconf,
  kReplstream,
  kReplack,
  kReplseq,
  kGetat,
  kPromote,
  kUnknown,
};
inline constexpr uint32_t kCmdCount = 25;
const char* cmd_name(Cmd c);

class ReplLog;
class ReplicaSession;

struct ServerOptions {
  std::string bind = "127.0.0.1";
  uint16_t port = 6399;   // 0 = ephemeral; Server::port() reports the pick
  uint32_t threads = 4;   // reactor threads
  bool tcp_nodelay = true;
  // A connection whose unsent output exceeds this is dropped (a client
  // that stops reading must not buffer the server into the ground).
  size_t max_output_bytes = 64u << 20;
  // Record per-command latency histograms (a few ns per command; INFO
  // reports the percentiles).
  bool measure_latency = true;
};

class Server {
 public:
  struct Counters {
    uint64_t connections_accepted = 0;
    uint64_t connections_closed = 0;
    uint64_t active_connections = 0;
    uint64_t protocol_errors = 0;   // malformed/oversized frames
    uint64_t table_full_errors = 0; // commands answered "-ERR table full"
    uint64_t commands_processed = 0;
    std::array<uint64_t, kCmdCount> per_command{};
  };

  // Binds + listens immediately (throws std::runtime_error on failure) so
  // port() is valid before start(); `store` must outlive the server.
  Server(KvStore& store, ServerOptions opts);
  // Convenience: serve a bare HashTable through the fixed-record codec
  // (owns the adapter, not the table).
  Server(HashTable& table, ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Spawns the reactor threads. Idempotent.
  void start();
  // Graceful stop: closes the listener, wakes every reactor, closes the
  // connections, joins. Idempotent; also triggered by a SHUTDOWN command.
  void stop();
  // True between start() and stop()/SHUTDOWN.
  bool running() const;
  // Blocks until the server leaves the running state (stop() from another
  // thread, or a SHUTDOWN command). The hdnh_server binary parks here.
  void wait();

  uint16_t port() const { return port_; }

  // Attach the primary-side replication log: acknowledged mutations are
  // appended (and shipped to replica sinks) before their ack is queued,
  // and REPLSTREAM hands sink connections over. Set before start(); the
  // log must outlive the server's running phase.
  void set_repl_log(ReplLog* log) { repl_log_ = log; }
  // Mark this server a replica: mutations answer -READONLY until the
  // session reports promoted(); PROMOTE drives session->promote(). Set
  // before start(); the session must outlive the server's running phase.
  void set_replica(ReplicaSession* session) { replica_ = session; }

  Counters counters() const;
  // Merged per-command latency histogram snapshots (index = Cmd).
  std::vector<Histogram> latency_snapshot() const;
  // The same text INFO serves over the wire.
  std::string info_text() const;

 private:
  struct Conn;
  struct Reactor;

  void reactor_loop(Reactor& r);
  void accept_ready(Reactor& r);
  void conn_readable(Reactor& r, Conn& c);
  void conn_writable(Reactor& r, Conn& c);
  void close_conn(Reactor& r, Conn& c);
  void flush_output(Reactor& r, Conn& c);
  void execute(Reactor& r, Conn& c, std::vector<std::string>& args);
  // Hand a connection that completed the REPLSTREAM handshake over to the
  // ReplLog: its fd leaves the reactor's epoll set and conns map (without
  // being closed) and becomes a replication sink.
  void detach_repl_conn(Reactor& r, Conn& c);
  // Hand worker-produced replies (RESHARD) back to the reactor's
  // connections; runs on the reactor thread after a wake_fd poke.
  void deliver_async(Reactor& r);
  void init_reactors();
  void register_gauges();

  // owned_store_ declared first: store_ may bind to it.
  std::unique_ptr<KvStore> owned_store_;
  KvStore& store_;
  ServerOptions opts_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> started_{false};
  uint64_t start_ns_ = 0;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  // RESHARD worker: a split can take seconds on a big shard, so it runs
  // off the reactor thread and the reply is posted back through the
  // originating reactor's wake_fd. One split at a time (the store
  // serializes them anyway); reshard_mu_ guards the spawn handshake
  // against concurrent reactors, stop() joins the worker.
  std::mutex reshard_mu_;
  std::thread reshard_thread_;
  std::atomic<bool> reshard_busy_{false};
  ReplLog* repl_log_ = nullptr;
  ReplicaSession* replica_ = nullptr;
  std::vector<uint64_t> obs_gauges_;
  std::string obs_label_;
};

}  // namespace hdnh::net
