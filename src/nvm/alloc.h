// A small persistent allocator over a PmemPool — the PMDK stand-in.
//
// Layout: a header block at the region base (offset 0 for a whole-pool
// allocator) holds a magic, a persisted bump pointer, and 16 root slots.
// Durable structures store pool *offsets*, and applications reach their
// superblocks through the root slots after a restart. Freed blocks go to a
// volatile size-segregated free list; blocks freed but not reused before a
// crash leak (standard for PM allocators without offline GC — resizing
// benches reuse same-size levels, so in practice nothing accumulates).
//
// An allocator may also govern a sub-*region* [base, base+bytes) of a pool
// (the sharded layout carves one region per shard, see sharded_layout.h).
// Region allocators still hand out absolute pool offsets — consumers
// address through pool().to_ptr() exactly as before — but bound their bump
// pointer to the region end, so one shard exhausting its slice throws
// std::bad_alloc without touching its neighbours.
//
// Chunked mode (enable_chunked, the HESH/Halo ThreadMeta/DimmMeta design):
// the region's free space is carved into power-of-two chunks fronted by a
// persisted chunk table — one cacheline per chunk, anchored in root slot
// kChunkTableRoot. Threads CAS-claim whole chunks (preferring chunks on
// their home DIMM under the pool's DimmConfig) and bump-allocate inside
// them, so the allocation hot path persists NO shared metadata: the shared
// bump-pointer persist+fence of the default path happens once per chunk
// instead of once per alloc. Chunk-sized requests (value-log segments)
// claim whole chunks directly. Recovery walks the chunk table: claimed
// chunks stay consumed whatever their interior bump state was, free chunks
// are immediately claimable — free space is rebuilt exactly at chunk
// granularity, the same leak-on-crash contract the bump pointer already
// has, now bounded per crash by (threads x chunk_bytes).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "nvm/pmem.h"

namespace hdnh::nvm {

class PmemAllocator {
 public:
  static constexpr int kRoots = 16;
  static constexpr uint64_t kMagic = 0x48444E485F504D31ULL;  // "HDNH_PM1"

  // Formats the pool if it does not carry our magic; otherwise attaches to
  // the existing layout (restart/recovery path).
  explicit PmemAllocator(PmemPool& pool);

  // Region allocator over [region_off, region_off + region_bytes) of the
  // pool. `region_off` must be kNvmBlock-aligned. Formats the region header
  // on first use, attaches on restart.
  PmemAllocator(PmemPool& pool, uint64_t region_off, uint64_t region_bytes);

  PmemPool& pool() { return pool_; }
  const PmemPool& pool() const { return pool_; }

  // True if the constructor attached to an already-formatted pool.
  bool attached_existing() const { return attached_; }

  // Allocate `size` bytes aligned to `align` (power of two). Returns the
  // pool offset. Throws std::bad_alloc when the pool is exhausted.
  uint64_t alloc(uint64_t size, uint64_t align = kNvmBlock);

  // Return a block to the (volatile) free list.
  void free_block(uint64_t off, uint64_t size);

  // Root-slot directory for application superblocks.
  uint64_t root(int slot) const;
  uint64_t root_size(int slot) const;
  void set_root(int slot, uint64_t off, uint64_t size);

  // Bytes handed out so far (excludes header).
  uint64_t used() const;

  // Region this allocator governs (whole pool: 0 / pool.size()).
  uint64_t region_off() const { return base_; }
  uint64_t region_bytes() const { return bytes_; }
  // Bytes still available to alloc() from the bump pointer (ignores the
  // free lists; a lower bound on what fits).
  uint64_t remaining() const;

  // Fixed per-allocator metadata cost: the header area reserved at the
  // region base before the first alloc()-able byte.
  static constexpr uint64_t header_bytes() { return kNvmBlock * 2; }

  // ---- per-thread chunked allocation ------------------------------------

  // Root slot anchoring the persisted chunk table (15 is the shard map).
  static constexpr int kChunkTableRoot = 14;
  static constexpr uint64_t kChunkMagic = 0x48444E4843484E4BULL;  // "HDNHCHNK"

  struct ChunkConfig {
    uint64_t chunk_bytes = 256 * 1024;  // power of two, >= 4 KiB
    // Number of chunks to carve; 0 sizes from the region's remaining free
    // space (minus reserve_bytes kept for the shared bump path).
    uint64_t chunk_count = 0;
    // Requests up to this size are served from the thread's bump chunk;
    // 0 = chunk_bytes / 8. Larger requests claim a whole chunk when they
    // fit in (chunk_bytes/2, chunk_bytes], else fall back to the shared
    // path (counted in Stats::alloc_shared_fallbacks).
    uint64_t small_max = 0;
    uint64_t reserve_bytes = 0;  // 0 = remaining()/8
  };

  // Carve the chunk table + arena out of this allocator's free space and
  // publish it in kChunkTableRoot — or, if the region already carries a
  // chunk table (restart/recovery), attach to it, ignoring `cfg`. After a
  // restart plain format_or_attach() re-attaches chunked mode
  // automatically, so recovery code needs no special call.
  void enable_chunked(const ChunkConfig& cfg);
  void enable_chunked() { enable_chunked(ChunkConfig{}); }
  bool chunked() const { return chunks_ != nullptr; }

  struct ChunkStats {
    uint64_t chunk_bytes = 0;
    uint64_t chunk_count = 0;
    uint64_t claimed = 0;      // chunks whose table entry is claimed
    uint64_t table_off = 0;
    uint64_t arena_off = 0;
    uint64_t small_max = 0;
    uint32_t dimms = 1;              // pool DIMM geometry at format time
    uint64_t interleave_bytes = 0;
  };
  // False when chunked mode is off.
  bool chunk_stats(ChunkStats* out) const;
  // Claim state of chunk `idx` (doctor's placement map).
  bool chunk_claimed(uint64_t idx) const;

 private:
  struct Header {
    uint64_t magic;
    uint64_t pool_size;  // region size for region allocators
    std::atomic<uint64_t> bump;
    uint64_t root_off[kRoots];
    uint64_t root_size[kRoots];
  };
  static_assert(sizeof(Header) <= kNvmBlock * 2, "header fits two blocks");

  // Chunk-table superblock (first block of the table allocation; the
  // ChunkEntry array starts at the next block boundary).
  struct ChunkSuper {
    uint64_t magic;
    uint64_t chunk_bytes;
    uint64_t chunk_count;
    uint64_t arena_off;  // absolute pool offset of chunk 0 (chunk-aligned)
    uint64_t small_max;
    uint32_t dimms;  // pool geometry at format time, for offline inspection
    uint32_t pad0;
    uint64_t interleave_bytes;
  };
  static_assert(sizeof(ChunkSuper) <= kNvmBlock, "chunk super fits a block");

  // One cacheline per chunk so concurrent claims of different chunks never
  // contend on a persist of the same line. state: 0 = free, 1 = claimed.
  struct ChunkEntry {
    std::atomic<uint64_t> state;
    uint64_t pad[7];
  };
  static_assert(sizeof(ChunkEntry) == kCacheLine, "one line per chunk");

  // A thread's current bump chunk. Slots are CAS-owned by thread token
  // (the LogStore head-claiming protocol); all fields past `owner` are
  // owned exclusively by the claiming thread.
  struct alignas(kCacheLine) ThreadChunk {
    std::atomic<uint64_t> owner{0};
    uint64_t cur = 0;  // next bump offset (absolute; 0 = no chunk yet)
    uint64_t end = 0;
    uint32_t home_dimm = 0;
  };
  static constexpr uint32_t kMaxThreadChunks = 64;

  Header* hdr() const { return pool_.to_ptr<Header>(base_); }
  void format_or_attach();
  void format_chunks(const ChunkConfig& cfg);
  void attach_chunks();
  // Serve from the chunked paths; 0 = caller falls back to the shared path
  // (offset 0 is always the pool/region header, never a valid allocation).
  uint64_t alloc_chunked(uint64_t size, uint64_t align);
  int64_t claim_chunk(uint32_t home_dimm);
  ThreadChunk* my_chunk();

  PmemPool& pool_;
  uint64_t base_ = 0;
  uint64_t bytes_ = 0;
  bool attached_ = false;
  std::mutex free_mu_;
  std::map<uint64_t, std::vector<uint64_t>> free_lists_;  // size -> offsets
  // Chunked mode (null when disabled). The super/entries live in the pool.
  ChunkSuper* chunks_ = nullptr;
  ChunkEntry* chunk_entries_ = nullptr;
  std::atomic<uint64_t> chunks_claimed_{0};  // volatile mirror for gauges
  std::atomic<uint64_t> chunk_scan_{0};      // claim-scan rotor
  std::atomic<uint32_t> next_home_{0};       // round-robin home-DIMM dealer
  std::atomic<uint64_t> instance_gen_{0};    // keys the thread-slot cache
  ThreadChunk thread_chunks_[kMaxThreadChunks];
};

}  // namespace hdnh::nvm
