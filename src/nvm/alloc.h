// A small persistent allocator over a PmemPool — the PMDK stand-in.
//
// Layout: a header block at the region base (offset 0 for a whole-pool
// allocator) holds a magic, a persisted bump pointer, and 16 root slots.
// Durable structures store pool *offsets*, and applications reach their
// superblocks through the root slots after a restart. Freed blocks go to a
// volatile size-segregated free list; blocks freed but not reused before a
// crash leak (standard for PM allocators without offline GC — resizing
// benches reuse same-size levels, so in practice nothing accumulates).
//
// An allocator may also govern a sub-*region* [base, base+bytes) of a pool
// (the sharded layout carves one region per shard, see sharded_layout.h).
// Region allocators still hand out absolute pool offsets — consumers
// address through pool().to_ptr() exactly as before — but bound their bump
// pointer to the region end, so one shard exhausting its slice throws
// std::bad_alloc without touching its neighbours.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "nvm/pmem.h"

namespace hdnh::nvm {

class PmemAllocator {
 public:
  static constexpr int kRoots = 16;
  static constexpr uint64_t kMagic = 0x48444E485F504D31ULL;  // "HDNH_PM1"

  // Formats the pool if it does not carry our magic; otherwise attaches to
  // the existing layout (restart/recovery path).
  explicit PmemAllocator(PmemPool& pool);

  // Region allocator over [region_off, region_off + region_bytes) of the
  // pool. `region_off` must be kNvmBlock-aligned. Formats the region header
  // on first use, attaches on restart.
  PmemAllocator(PmemPool& pool, uint64_t region_off, uint64_t region_bytes);

  PmemPool& pool() { return pool_; }
  const PmemPool& pool() const { return pool_; }

  // True if the constructor attached to an already-formatted pool.
  bool attached_existing() const { return attached_; }

  // Allocate `size` bytes aligned to `align` (power of two). Returns the
  // pool offset. Throws std::bad_alloc when the pool is exhausted.
  uint64_t alloc(uint64_t size, uint64_t align = kNvmBlock);

  // Return a block to the (volatile) free list.
  void free_block(uint64_t off, uint64_t size);

  // Root-slot directory for application superblocks.
  uint64_t root(int slot) const;
  uint64_t root_size(int slot) const;
  void set_root(int slot, uint64_t off, uint64_t size);

  // Bytes handed out so far (excludes header).
  uint64_t used() const;

  // Region this allocator governs (whole pool: 0 / pool.size()).
  uint64_t region_off() const { return base_; }
  uint64_t region_bytes() const { return bytes_; }
  // Bytes still available to alloc() from the bump pointer (ignores the
  // free lists; a lower bound on what fits).
  uint64_t remaining() const;

  // Fixed per-allocator metadata cost: the header area reserved at the
  // region base before the first alloc()-able byte.
  static constexpr uint64_t header_bytes() { return kNvmBlock * 2; }

 private:
  struct Header {
    uint64_t magic;
    uint64_t pool_size;  // region size for region allocators
    std::atomic<uint64_t> bump;
    uint64_t root_off[kRoots];
    uint64_t root_size[kRoots];
  };
  static_assert(sizeof(Header) <= kNvmBlock * 2, "header fits two blocks");

  Header* hdr() const { return pool_.to_ptr<Header>(base_); }
  void format_or_attach();

  PmemPool& pool_;
  uint64_t base_ = 0;
  uint64_t bytes_ = 0;
  bool attached_ = false;
  std::mutex free_mu_;
  std::map<uint64_t, std::vector<uint64_t>> free_lists_;  // size -> offsets
};

}  // namespace hdnh::nvm
