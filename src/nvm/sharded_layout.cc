#include "nvm/sharded_layout.h"

#include <cstring>
#include <stdexcept>
#include <string>

#include "nvm/fault.h"

namespace hdnh::nvm {

bool ShardedPmemLayout::split_record(ShardDirRecord* rec, uint32_t src,
                                     uint32_t tgt) {
  const uint32_t ld = rec->local_depth[src];
  if (ld >= ShardMapSuper::kMaxDepth) return false;
  if (tgt != rec->shard_count || tgt >= ShardMapSuper::kMaxShards) {
    return false;
  }
  if (ld == rec->global_depth) {
    // Double: with high-bit addressing new[e] = old[e >> 1]; walk downward
    // so the in-place expansion never reads an already-written slot.
    const uint32_t n = 1u << rec->global_depth;
    for (uint32_t e = 2 * n; e-- > 0;) rec->entry[e] = rec->entry[e >> 1];
    rec->global_depth++;
  }
  // src owns the 2^(G-ld) entries sharing its ld-bit prefix; the half with
  // the next prefix bit set moves to tgt.
  const uint32_t g = rec->global_depth;
  for (uint32_t e = 0; e < (1u << g); ++e) {
    if (rec->entry[e] == src && ((e >> (g - ld - 1)) & 1u)) {
      rec->entry[e] = static_cast<uint8_t>(tgt);
    }
  }
  rec->local_depth[src] = static_cast<uint8_t>(ld + 1);
  rec->local_depth[tgt] = static_cast<uint8_t>(ld + 1);
  rec->shard_count = tgt + 1;
  return true;
}

ShardedPmemLayout::ShardedPmemLayout(PmemAllocator& parent, uint32_t shards,
                                     uint64_t bytes_per_shard, int root_slot,
                                     uint32_t max_shards)
    : parent_(parent) {
  PmemPool& pool = parent_.pool();

  const uint64_t map_off = parent_.root(root_slot);
  if (map_off != 0) {
    map_ = pool.to_ptr<ShardMapSuper>(map_off);
    if (map_->magic == ShardMapSuper::kMagicV1) {
      throw std::runtime_error(
          "v1 shard map (pre-directory format): rebuild the pool");
    }
    if (map_->magic != ShardMapSuper::kMagic) {
      throw std::runtime_error("shard map root set but magic mismatch");
    }
    attached_ = true;
    // A crash between begin_split and the directory flip leaves the marker
    // set but the target outside the active directory: the split never
    // happened, so reset the target region for reuse. A marker with the
    // target *inside* the directory is a published-but-uncleaned split; the
    // facade finishes the idempotent cleanup and calls clear_split_state().
    if (map_->split_state != 0 && !split_cleanup_pending()) {
      FaultScope scope(kFaultShardSplit);
      map_->split_state = 0;
      pool.persist_fence(&map_->split_state, sizeof(map_->split_state));
      reset_region(map_->split_target);
    }
    allocs_.resize(regions());  // spares stay null until begin_split
    const uint32_t active = this->shards();  // param `shards` shadows
    for (uint32_t s = 0; s < active; ++s) {
      allocs_[s] = std::make_unique<PmemAllocator>(pool, map_->shard_off[s],
                                                   map_->shard_bytes[s]);
      if (!allocs_[s]->attached_existing()) {
        throw std::runtime_error("shard region lost its allocator header");
      }
    }
    return;
  }

  if (shards == 0 || shards > ShardMapSuper::kMaxShards) {
    throw std::invalid_argument(
        "shard count must be in [1, " +
        std::to_string(ShardMapSuper::kMaxShards) + "], got " +
        std::to_string(shards));
  }
  uint32_t region_count = max_shards == 0 ? shards : max_shards;
  if (region_count < shards) region_count = shards;
  if (region_count > ShardMapSuper::kMaxShards) {
    throw std::invalid_argument(
        "max_shards must be in [initial, " +
        std::to_string(ShardMapSuper::kMaxShards) + "], got " +
        std::to_string(region_count));
  }

  const uint64_t map_alloc =
      parent_.alloc(sizeof(ShardMapSuper), kNvmBlock);
  map_ = pool.to_ptr<ShardMapSuper>(map_alloc);
  std::memset(static_cast<void*>(map_), 0, sizeof(ShardMapSuper));

  // When the pool models multiple interleaved DIMMs, align each region base
  // to a stripe boundary so consecutive shards start on consecutive DIMMs —
  // a K-thread workload over K shards then spreads across all D DIMMs
  // instead of having every region base share stripe 0's DIMM. Equal-split
  // only: the stripe slack comes out of the per-region budget, so callers'
  // pool-size hints stay valid. An explicit bytes_per_shard keeps the old
  // block alignment.
  const uint32_t dimms = pool.dimm_count();
  const uint64_t ig = pool.config().dimm.interleave_bytes;
  uint64_t align = kNvmBlock;

  uint64_t per = bytes_per_shard;
  if (per == 0) {
    // Equal split of everything still unallocated, keeping one alignment
    // unit per region for slack inside alloc().
    const uint64_t avail = parent_.remaining();
    if (dimms > 1 && ig > kNvmBlock &&
        avail / 2 > static_cast<uint64_t>(region_count) * ig) {
      align = ig;
    }
    const uint64_t slack = static_cast<uint64_t>(region_count) * align;
    if (avail <= slack) throw std::bad_alloc();
    per = (avail - slack) / region_count / kNvmBlock * kNvmBlock;
  }
  if (per < PmemAllocator::header_bytes() + kNvmBlock) throw std::bad_alloc();

  map_->region_count = region_count;
  map_->dimms = dimms;
  map_->interleave_bytes = dimms > 1 ? ig : 0;
  allocs_.resize(region_count);
  for (uint32_t s = 0; s < region_count; ++s) {
    const uint64_t off = parent_.alloc(per, align);
    map_->shard_off[s] = off;
    map_->shard_bytes[s] = per;
    map_->shard_dimm[s] = static_cast<uint8_t>(pool.dimm_of(off));
    // Only active shards get a formatted allocator now; spare regions are
    // formatted when begin_split claims them.
    if (s < shards) allocs_[s] = std::make_unique<PmemAllocator>(pool, off, per);
  }

  // Initial directory: grow from one shard of depth 0 by repeatedly
  // splitting the shallowest shard (ties to the lowest id), so non-power-
  // of-two counts get the most balanced depth mix possible.
  ShardDirRecord& rec0 = map_->dir[0];
  rec0.global_depth = 0;
  rec0.shard_count = 1;
  rec0.seq = 1;
  while (rec0.shard_count < shards) {
    uint32_t src = 0;
    for (uint32_t s = 1; s < rec0.shard_count; ++s) {
      if (rec0.local_depth[s] < rec0.local_depth[src]) src = s;
    }
    split_record(&rec0, src, rec0.shard_count);
  }
  map_->dir_active = 0;

  pool.persist(map_, sizeof(ShardMapSuper));
  pool.fence();
  map_->magic = ShardMapSuper::kMagic;
  pool.persist_fence(&map_->magic, sizeof(map_->magic));
  // Root slot last: recovery either sees a complete map or no map at all.
  parent_.set_root(root_slot, map_alloc, sizeof(ShardMapSuper));
}

bool ShardedPmemLayout::can_split(uint32_t s) const {
  return !split_in_progress() && s < shards() && shards() < regions() &&
         local_depth(s) < ShardMapSuper::kMaxDepth;
}

uint32_t ShardedPmemLayout::begin_split(uint32_t source) {
  if (!can_split(source)) {
    throw std::logic_error("begin_split: shard cannot split (in-flight "
                           "split, no spare region, or depth maxed)");
  }
  PmemPool& pool = parent_.pool();
  FaultScope scope(kFaultShardSplit);
  const uint32_t target = shards();
  // Marker fields before the marker itself, so a set marker always names a
  // valid (source, target) pair.
  map_->split_source = source;
  map_->split_target = target;
  pool.persist(&map_->split_source, sizeof(uint32_t) * 2);
  pool.fence();
  map_->split_state = 1;
  pool.persist_fence(&map_->split_state, sizeof(map_->split_state));
  // The spare may hold a previous aborted split's half-built table; wipe
  // its allocator header so construction formats it fresh.
  reset_region(target);
  allocs_[target] = std::make_unique<PmemAllocator>(
      pool, map_->shard_off[target], map_->shard_bytes[target]);
  return target;
}

void ShardedPmemLayout::publish_split() {
  if (!split_in_progress() || split_cleanup_pending()) {
    throw std::logic_error("publish_split without a migrating split");
  }
  PmemPool& pool = parent_.pool();
  FaultScope scope(kFaultShardSplit);
  ShardDirRecord& next = inactive_rec();
  next = rec();
  if (!split_record(&next, map_->split_source, map_->split_target)) {
    throw std::logic_error("publish_split: directory retarget failed");
  }
  next.seq = rec().seq + 1;
  pool.persist(&next, sizeof(next));
  pool.fence();
  // The commit point: one 8-byte selector flip.
  map_->dir_active ^= 1;
  pool.persist_fence(&map_->dir_active, sizeof(map_->dir_active));
}

void ShardedPmemLayout::abort_split() {
  if (!split_in_progress() || split_cleanup_pending()) {
    throw std::logic_error("abort_split after publish");
  }
  FaultScope scope(kFaultShardSplit);
  const uint32_t target = map_->split_target;
  map_->split_state = 0;
  parent_.pool().persist_fence(&map_->split_state, sizeof(map_->split_state));
  allocs_[target].reset();
  reset_region(target);
}

void ShardedPmemLayout::clear_split_state() {
  if (!split_in_progress()) return;
  FaultScope scope(kFaultShardSplit);
  map_->split_state = 0;
  parent_.pool().persist_fence(&map_->split_state, sizeof(map_->split_state));
}

void ShardedPmemLayout::reset_region(uint32_t r) {
  PmemPool& pool = parent_.pool();
  void* base = pool.to_ptr<void>(map_->shard_off[r]);
  std::memset(base, 0, PmemAllocator::header_bytes());
  pool.persist_fence(base, PmemAllocator::header_bytes());
}

bool ShardedPmemLayout::present(const PmemAllocator& parent, int root_slot) {
  const uint64_t off = parent.root(root_slot);
  if (off == 0) return false;
  return parent.pool().to_ptr<ShardMapSuper>(off)->magic ==
         ShardMapSuper::kMagic;
}

}  // namespace hdnh::nvm
