#include "nvm/sharded_layout.h"

#include <cstring>
#include <stdexcept>
#include <string>

namespace hdnh::nvm {

ShardedPmemLayout::ShardedPmemLayout(PmemAllocator& parent, uint32_t shards,
                                     uint64_t bytes_per_shard, int root_slot)
    : parent_(parent) {
  PmemPool& pool = parent_.pool();

  const uint64_t map_off = parent_.root(root_slot);
  if (map_off != 0) {
    map_ = pool.to_ptr<ShardMapSuper>(map_off);
    if (map_->magic != ShardMapSuper::kMagic) {
      throw std::runtime_error("shard map root set but magic mismatch");
    }
    attached_ = true;
    shard_count_ = map_->shard_count;  // the carve on media wins
    allocs_.reserve(shard_count_);
    for (uint32_t s = 0; s < shard_count_; ++s) {
      allocs_.push_back(std::make_unique<PmemAllocator>(
          pool, map_->shard_off[s], map_->shard_bytes[s]));
      if (!allocs_.back()->attached_existing()) {
        throw std::runtime_error("shard region lost its allocator header");
      }
    }
    return;
  }

  if (shards == 0 || shards > ShardMapSuper::kMaxShards) {
    throw std::invalid_argument(
        "shard count must be in [1, " +
        std::to_string(ShardMapSuper::kMaxShards) + "], got " +
        std::to_string(shards));
  }

  const uint64_t map_alloc =
      parent_.alloc(sizeof(ShardMapSuper), kNvmBlock);
  map_ = pool.to_ptr<ShardMapSuper>(map_alloc);
  std::memset(static_cast<void*>(map_), 0, sizeof(ShardMapSuper));

  uint64_t per = bytes_per_shard;
  if (per == 0) {
    // Equal split of everything still unallocated, keeping one block per
    // shard for alignment slack inside alloc().
    const uint64_t avail = parent_.remaining();
    const uint64_t slack = static_cast<uint64_t>(shards) * kNvmBlock;
    if (avail <= slack) throw std::bad_alloc();
    per = (avail - slack) / shards / kNvmBlock * kNvmBlock;
  }
  if (per < PmemAllocator::header_bytes() + kNvmBlock) throw std::bad_alloc();

  shard_count_ = shards;
  map_->shard_count = shards;
  allocs_.reserve(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    const uint64_t off = parent_.alloc(per, kNvmBlock);
    map_->shard_off[s] = off;
    map_->shard_bytes[s] = per;
    allocs_.push_back(std::make_unique<PmemAllocator>(pool, off, per));
  }

  pool.persist(map_, sizeof(ShardMapSuper));
  pool.fence();
  map_->magic = ShardMapSuper::kMagic;
  pool.persist_fence(&map_->magic, sizeof(map_->magic));
  // Root slot last: recovery either sees a complete map or no map at all.
  parent_.set_root(root_slot, map_alloc, sizeof(ShardMapSuper));
}

bool ShardedPmemLayout::present(const PmemAllocator& parent, int root_slot) {
  const uint64_t off = parent.root(root_slot);
  if (off == 0) return false;
  return parent.pool().to_ptr<ShardMapSuper>(off)->magic ==
         ShardMapSuper::kMagic;
}

}  // namespace hdnh::nvm
