#include "nvm/sharded_layout.h"

#include <cstring>
#include <stdexcept>
#include <string>

namespace hdnh::nvm {

ShardedPmemLayout::ShardedPmemLayout(PmemAllocator& parent, uint32_t shards,
                                     uint64_t bytes_per_shard, int root_slot)
    : parent_(parent) {
  PmemPool& pool = parent_.pool();

  const uint64_t map_off = parent_.root(root_slot);
  if (map_off != 0) {
    map_ = pool.to_ptr<ShardMapSuper>(map_off);
    if (map_->magic != ShardMapSuper::kMagic) {
      throw std::runtime_error("shard map root set but magic mismatch");
    }
    attached_ = true;
    shard_count_ = map_->shard_count;  // the carve on media wins
    allocs_.reserve(shard_count_);
    for (uint32_t s = 0; s < shard_count_; ++s) {
      allocs_.push_back(std::make_unique<PmemAllocator>(
          pool, map_->shard_off[s], map_->shard_bytes[s]));
      if (!allocs_.back()->attached_existing()) {
        throw std::runtime_error("shard region lost its allocator header");
      }
    }
    return;
  }

  if (shards == 0 || shards > ShardMapSuper::kMaxShards) {
    throw std::invalid_argument(
        "shard count must be in [1, " +
        std::to_string(ShardMapSuper::kMaxShards) + "], got " +
        std::to_string(shards));
  }

  const uint64_t map_alloc =
      parent_.alloc(sizeof(ShardMapSuper), kNvmBlock);
  map_ = pool.to_ptr<ShardMapSuper>(map_alloc);
  std::memset(static_cast<void*>(map_), 0, sizeof(ShardMapSuper));

  // When the pool models multiple interleaved DIMMs, align each region base
  // to a stripe boundary so consecutive shards start on consecutive DIMMs —
  // a K-thread workload over K shards then spreads across all D DIMMs
  // instead of having every region base share stripe 0's DIMM. Equal-split
  // only: the stripe slack comes out of the per-shard budget, so callers'
  // pool-size hints stay valid. An explicit bytes_per_shard keeps the old
  // block alignment.
  const uint32_t dimms = pool.dimm_count();
  const uint64_t ig = pool.config().dimm.interleave_bytes;
  uint64_t align = kNvmBlock;

  uint64_t per = bytes_per_shard;
  if (per == 0) {
    // Equal split of everything still unallocated, keeping one alignment
    // unit per shard for slack inside alloc().
    const uint64_t avail = parent_.remaining();
    if (dimms > 1 && ig > kNvmBlock &&
        avail / 2 > static_cast<uint64_t>(shards) * ig) {
      align = ig;
    }
    const uint64_t slack = static_cast<uint64_t>(shards) * align;
    if (avail <= slack) throw std::bad_alloc();
    per = (avail - slack) / shards / kNvmBlock * kNvmBlock;
  }
  if (per < PmemAllocator::header_bytes() + kNvmBlock) throw std::bad_alloc();

  shard_count_ = shards;
  map_->shard_count = shards;
  map_->dimms = dimms;
  map_->interleave_bytes = dimms > 1 ? ig : 0;
  allocs_.reserve(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    const uint64_t off = parent_.alloc(per, align);
    map_->shard_off[s] = off;
    map_->shard_bytes[s] = per;
    map_->shard_dimm[s] = static_cast<uint8_t>(pool.dimm_of(off));
    allocs_.push_back(std::make_unique<PmemAllocator>(pool, off, per));
  }

  pool.persist(map_, sizeof(ShardMapSuper));
  pool.fence();
  map_->magic = ShardMapSuper::kMagic;
  pool.persist_fence(&map_->magic, sizeof(map_->magic));
  // Root slot last: recovery either sees a complete map or no map at all.
  parent_.set_root(root_slot, map_alloc, sizeof(ShardMapSuper));
}

bool ShardedPmemLayout::present(const PmemAllocator& parent, int root_slot) {
  const uint64_t off = parent.root(root_slot);
  if (off == 0) return false;
  return parent.pool().to_ptr<ShardMapSuper>(off)->magic ==
         ShardMapSuper::kMagic;
}

}  // namespace hdnh::nvm
