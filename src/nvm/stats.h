// Per-thread access statistics, aggregated on demand.
//
// Every scheme runs on the same emulated device and is charged through the
// same counters, so "NVM reads per lookup" is directly comparable across
// HDNH, Level hashing, CCEH and Path hashing. The HDNH paper's performance
// claims all reduce to these counts (fewer NVM block reads via OCF/hot
// table, fewer NVM writes via optimistic read concurrency), which makes
// them the primary reproduction signal on non-Optane hardware.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "nvm/config.h"

namespace hdnh::nvm {

struct StatsSnapshot {
  uint64_t nvm_read_ops = 0;     // read accesses (any size)
  uint64_t nvm_read_blocks = 0;  // 256 B media blocks touched by reads
  uint64_t nvm_write_ops = 0;    // annotated store ranges
  uint64_t nvm_write_lines = 0;  // cachelines persisted (CLWB count)
  uint64_t fences = 0;           // SFENCE count
  uint64_t dram_hot_hits = 0;    // lookups served by the DRAM hot table
  uint64_t ocf_filtered = 0;     // NVM probes avoided by OCF fingerprints
  uint64_t ocf_false_positive = 0;  // fingerprint matched, key did not
  uint64_t lock_waits = 0;       // contended lock/version retries
  // Batched-read pipelining (prefetch_block): block reads-ahead issued, and
  // how later on_read() calls resolved — against an in-flight/buffered
  // prefetch (overlapped: only the residual latency is charged) or cold
  // (stalled: the full block latency is charged). overlapped + stalled ==
  // nvm_read_blocks; the split changes latency only, never traffic.
  uint64_t nvm_prefetch_issued = 0;
  uint64_t nvm_read_blocks_overlapped = 0;
  uint64_t nvm_read_blocks_stalled = 0;
  // Crash-point fault injection (nvm/fault.h): durability events counted by
  // an armed FaultPlan, and injected crashes that actually fired.
  uint64_t fault_events = 0;
  uint64_t fault_crashes = 0;
  // Per-DIMM device model (DimmConfig with dimms > 1). Bytes are attributed
  // at media granularity (whole cachelines written, whole blocks read), so
  // summing write_bytes across DIMMs equals nvm_write_lines * 64 and
  // read_bytes equals nvm_read_blocks * 256 for a single-pool workload.
  // Stall time is what the per-DIMM token bucket added on top of the flat
  // latency charges; queue_depth sums, over stalled arrivals, the number of
  // equal-sized requests already queued ahead (divide by stalled arrivals
  // for an average depth).
  uint64_t nvm_dimm_read_bytes[kMaxDimms] = {};
  uint64_t nvm_dimm_write_bytes[kMaxDimms] = {};
  uint64_t nvm_dimm_read_stall_ns[kMaxDimms] = {};
  uint64_t nvm_dimm_write_stall_ns[kMaxDimms] = {};
  uint64_t nvm_dimm_queue_depth[kMaxDimms] = {};
  // Chunked PmemAllocator (alloc.h enable_chunked): chunks CAS-claimed from
  // the persisted chunk table, bytes served from thread-local bump chunks
  // (the zero-shared-persistent-writes hot path), and allocations that fell
  // back to the shared bump/freelist path (oversize or chunks exhausted).
  uint64_t alloc_chunks_claimed = 0;
  uint64_t alloc_chunk_bytes = 0;
  uint64_t alloc_shared_fallbacks = 0;

  StatsSnapshot& operator-=(const StatsSnapshot& rhs) {
    nvm_read_ops -= rhs.nvm_read_ops;
    nvm_read_blocks -= rhs.nvm_read_blocks;
    nvm_write_ops -= rhs.nvm_write_ops;
    nvm_write_lines -= rhs.nvm_write_lines;
    fences -= rhs.fences;
    dram_hot_hits -= rhs.dram_hot_hits;
    ocf_filtered -= rhs.ocf_filtered;
    ocf_false_positive -= rhs.ocf_false_positive;
    lock_waits -= rhs.lock_waits;
    nvm_prefetch_issued -= rhs.nvm_prefetch_issued;
    nvm_read_blocks_overlapped -= rhs.nvm_read_blocks_overlapped;
    nvm_read_blocks_stalled -= rhs.nvm_read_blocks_stalled;
    fault_events -= rhs.fault_events;
    fault_crashes -= rhs.fault_crashes;
    for (uint32_t d = 0; d < kMaxDimms; ++d) {
      nvm_dimm_read_bytes[d] -= rhs.nvm_dimm_read_bytes[d];
      nvm_dimm_write_bytes[d] -= rhs.nvm_dimm_write_bytes[d];
      nvm_dimm_read_stall_ns[d] -= rhs.nvm_dimm_read_stall_ns[d];
      nvm_dimm_write_stall_ns[d] -= rhs.nvm_dimm_write_stall_ns[d];
      nvm_dimm_queue_depth[d] -= rhs.nvm_dimm_queue_depth[d];
    }
    alloc_chunks_claimed -= rhs.alloc_chunks_claimed;
    alloc_chunk_bytes -= rhs.alloc_chunk_bytes;
    alloc_shared_fallbacks -= rhs.alloc_shared_fallbacks;
    return *this;
  }
};

// One counter block per thread; nonatomic fast-path increments, aggregated
// under a registry lock when a snapshot is requested.
class Stats {
 public:
  struct Counters {
    uint64_t nvm_read_ops = 0;
    uint64_t nvm_read_blocks = 0;
    uint64_t nvm_write_ops = 0;
    uint64_t nvm_write_lines = 0;
    uint64_t fences = 0;
    uint64_t dram_hot_hits = 0;
    uint64_t ocf_filtered = 0;
    uint64_t ocf_false_positive = 0;
    uint64_t lock_waits = 0;
    uint64_t nvm_prefetch_issued = 0;
    uint64_t nvm_read_blocks_overlapped = 0;
    uint64_t nvm_read_blocks_stalled = 0;
    uint64_t fault_events = 0;
    uint64_t fault_crashes = 0;
    uint64_t nvm_dimm_read_bytes[kMaxDimms] = {};
    uint64_t nvm_dimm_write_bytes[kMaxDimms] = {};
    uint64_t nvm_dimm_read_stall_ns[kMaxDimms] = {};
    uint64_t nvm_dimm_write_stall_ns[kMaxDimms] = {};
    uint64_t nvm_dimm_queue_depth[kMaxDimms] = {};
    uint64_t alloc_chunks_claimed = 0;
    uint64_t alloc_chunk_bytes = 0;
    uint64_t alloc_shared_fallbacks = 0;
  };

  // The calling thread's counter block (created and registered on first use).
  static Counters& local();

  // Sum of all thread counters ever registered (including exited threads'
  // final values), minus the baseline captured by the last reset().
  static StatsSnapshot snapshot();

  // Logically zero the aggregate, safe to call at any time from any
  // thread: instead of writing other threads' counter blocks (a data race
  // with their nonatomic fast-path increments), reset() swaps in the
  // current raw aggregate as a baseline that snapshot() subtracts.
  static void reset();

 private:
  struct Registry;
  static Registry& registry();
  static StatsSnapshot raw_aggregate_locked();
};

// RAII delta over the global counters: captures a baseline at construction,
// delta() reports what accrued since. Replaces the hand-rolled
// snapshot/subtract pattern in benches and tests:
//
//   ScopedStatsDelta d;
//   ... workload ...
//   const StatsSnapshot used = d.delta();
class ScopedStatsDelta {
 public:
  ScopedStatsDelta() : before_(Stats::snapshot()) {}

  StatsSnapshot delta() const {
    StatsSnapshot s = Stats::snapshot();
    s -= before_;
    return s;
  }

  // Re-arm the baseline at "now" (next phase of a multi-phase bench).
  void rebase() { before_ = Stats::snapshot(); }

 private:
  StatsSnapshot before_;
};

}  // namespace hdnh::nvm
