#include "nvm/pmem.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "common/random.h"
#include "obs/trace.h"

namespace hdnh::nvm {

namespace {

// Per-thread window of in-flight block reads-ahead (prefetch_block). Sized
// like a device read buffer: direct-mapped on the block number, so issuing
// more than kCap blocks (or two blocks colliding on a slot) evicts —
// bounded memory-level parallelism. Entries are keyed by absolute block
// number, so one window serves every pool a thread touches (sharded stores
// run one pool per shard). `ready_ns` is the absolute completion deadline;
// a stale entry whose deadline long passed simply charges zero residual
// latency — the block is still sitting in the device buffer, which is
// exactly how the AEP read buffer behaves for recently fetched blocks.
// Direct mapping keeps both insert and lookup O(1): this sits on the
// hottest read path of the emulator and a scan would eat the latency the
// window exists to hide.
struct PrefetchWindow {
  static constexpr uint64_t kCap = kPrefetchWindowBlocks;
  struct Ent {
    uint64_t block = 0;  // absolute address / kNvmBlock + 1; 0 == empty
    uint64_t ready_ns = 0;
  };
  Ent ents[kCap];
  uint32_t live = 0;  // nonzero entries
};

thread_local PrefetchWindow t_prefetch;

}  // namespace

void PmemPool::prefetch_block(const void* p, uint64_t len) {
  auto& c = Stats::local();
  auto& w = t_prefetch;
  const uint64_t block_ns = static_cast<uint64_t>(
      static_cast<double>(cfg_.read_ns_per_block) * cfg_.latency_scale);
  const uint64_t now = cfg_.emulate_latency ? now_ns() : 0;
  const uint64_t a = reinterpret_cast<uint64_t>(p);
  const uint64_t first = a / kNvmBlock;
  const uint64_t last = (a + (len ? len - 1 : 0)) / kNvmBlock;
  for (uint64_t blk = first; blk <= last; ++blk) {
    // Real CPU prefetch of the block's cachelines: the emulator models the
    // media latency, the hardware still has to move the bytes.
    const char* lp = reinterpret_cast<const char*>(blk * kNvmBlock);
    for (uint64_t o = 0; o < kNvmBlock; o += kCacheLine) {
      __builtin_prefetch(lp + o);
    }
    c.nvm_prefetch_issued++;
    const uint64_t key = blk + 1;
    PrefetchWindow::Ent& slot = w.ents[blk & (PrefetchWindow::kCap - 1)];
    // Already in flight (or buffered): keep the earlier deadline.
    if (slot.block == key) continue;
    if (slot.block == 0) w.live++;
    slot.block = key;
    slot.ready_ns = cfg_.emulate_latency ? now + block_ns : 0;
  }
}

void PmemPool::charge_read_latency(const void* p, uint64_t len,
                                   uint64_t blocks, Stats::Counters& c) {
  auto& w = t_prefetch;
  const uint64_t block_ns = static_cast<uint64_t>(
      static_cast<double>(cfg_.read_ns_per_block) * cfg_.latency_scale);
  if (w.live == 0) {
    c.nvm_read_blocks_stalled += blocks;
    if (cfg_.emulate_latency) spin_for_ns(blocks * block_ns);
    return;
  }
  uint64_t stalled = 0;
  uint64_t residual_ns = 0;
  const uint64_t now = cfg_.emulate_latency ? now_ns() : 0;
  const uint64_t a = reinterpret_cast<uint64_t>(p);
  const uint64_t first = a / kNvmBlock;
  const uint64_t last = (a + (len ? len - 1 : 0)) / kNvmBlock;
  for (uint64_t blk = first; blk <= last; ++blk) {
    PrefetchWindow::Ent& e = w.ents[blk & (PrefetchWindow::kCap - 1)];
    if (e.block != blk + 1) {
      ++stalled;
      continue;
    }
    c.nvm_read_blocks_overlapped++;
    if (e.ready_ns > now) residual_ns += e.ready_ns - now;
    e.block = 0;  // consumed
    w.live--;
  }
  c.nvm_read_blocks_stalled += stalled;
  const uint64_t charge_ns = residual_ns + stalled * block_ns;
  if (cfg_.emulate_latency && charge_ns) spin_for_ns(charge_ns);
}

PmemPool::PmemPool(uint64_t size, NvmConfig cfg, const std::string& backing_file)
    : cfg_(cfg) {
  size_ = (size + kNvmBlock - 1) / kNvmBlock * kNvmBlock;
  if (cfg_.dimm.dimms == 0) cfg_.dimm.dimms = 1;
  if (cfg_.dimm.dimms > kMaxDimms) {
    throw std::invalid_argument("PmemPool: DimmConfig.dimms exceeds kMaxDimms");
  }
  if (cfg_.dimm.interleave_bytes != 0) {
    // Stripe boundaries must fall on media-block (hence cacheline) edges so
    // per-stripe unit counts sum exactly to the flat counts.
    cfg_.dimm.interleave_bytes =
        (cfg_.dimm.interleave_bytes + kNvmBlock - 1) / kNvmBlock * kNvmBlock;
  } else if (cfg_.dimm.dimms > 1) {
    dimm_slice_bytes_ = size_ / cfg_.dimm.dimms / kNvmBlock * kNvmBlock;
    if (dimm_slice_bytes_ == 0) dimm_slice_bytes_ = kNvmBlock;
  }
  int flags = MAP_ANONYMOUS | MAP_PRIVATE;
  if (!backing_file.empty()) {
    struct stat st{};
    recovered_ = ::stat(backing_file.c_str(), &st) == 0 &&
                 static_cast<uint64_t>(st.st_size) >= size_;
    fd_ = ::open(backing_file.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0) throw std::runtime_error("PmemPool: cannot open " + backing_file);
    if (::ftruncate(fd_, static_cast<off_t>(size_)) != 0) {
      ::close(fd_);
      throw std::runtime_error("PmemPool: ftruncate failed");
    }
    flags = MAP_SHARED;
  }
  void* p = ::mmap(nullptr, size_, PROT_READ | PROT_WRITE, flags, fd_, 0);
  if (p == MAP_FAILED) {
    if (fd_ >= 0) ::close(fd_);
    throw std::runtime_error("PmemPool: mmap failed");
  }
  base_ = static_cast<char*>(p);
  if (cfg_.track_persistence) enable_crash_sim();
}

PmemPool::~PmemPool() {
  disable_crash_sim();
  if (base_) ::munmap(base_, size_);
  if (fd_ >= 0) ::close(fd_);
}

void PmemPool::persist(const void* p, uint64_t len) {
  if (FaultPlan* plan = fault_plan_.load(std::memory_order_acquire)) {
    fault_event(plan, kFaultPersist, p, len);
  }
  auto& c = Stats::local();
  const uint64_t lines = span_units(p, len, kCacheLine);
  c.nvm_write_lines += lines;
  if (shadow_) {
    // Copy whole covered cachelines to the media image. Concurrent writers
    // to *other bytes* of a shared line are benign: each byte lands with
    // some coherent value, matching real CLWB semantics closely enough for
    // the crash tests (which only reason about bytes the flusher owns).
    const uint64_t a = reinterpret_cast<uint64_t>(p);
    const uint64_t first =
        (a & ~(kCacheLine - 1)) - reinterpret_cast<uint64_t>(base_);
    std::memcpy(shadow_ + first, base_ + first, lines * kCacheLine);
  }
  if (cfg_.emulate_latency) {
    spin_for_ns(static_cast<uint64_t>(
        static_cast<double>(lines * cfg_.write_ns_per_line) * cfg_.latency_scale));
  }
  if (cfg_.dimm.dimms > 1) account_dimm(p, len, kCacheLine, true, c);
}

void PmemPool::account_dimm(const void* p, uint64_t len, uint64_t unit,
                            bool write, Stats::Counters& c) {
  const DimmConfig& dc = cfg_.dimm;
  const uint64_t stripe =
      dc.interleave_bytes != 0 ? dc.interleave_bytes : dimm_slice_bytes_;
  const uint64_t off0 = to_off(p);
  const uint64_t end = off0 + (len ? len : 1);
  const uint64_t mbps = write ? dc.write_mbps : dc.read_mbps;
  uint64_t cur = off0;
  while (cur < end) {
    uint64_t seg_end = (cur / stripe + 1) * stripe;
    if (seg_end > end) seg_end = end;
    const uint32_t d = dimm_of(cur);
    const uint64_t units = span_units(base_ + cur, seg_end - cur, unit);
    const uint64_t bytes = units * unit;
    if (write) {
      c.nvm_dimm_write_bytes[d] += bytes;
    } else {
      c.nvm_dimm_read_bytes[d] += bytes;
    }
    if (mbps != 0 && cfg_.emulate_latency) {
      charge_dimm_bandwidth(d, bytes, mbps, write, c);
    }
    cur = seg_end;
  }
}

void PmemPool::charge_dimm_bandwidth(uint32_t dimm, uint64_t bytes,
                                     uint64_t mbps, bool write,
                                     Stats::Counters& c) {
  // 1 MB/s == 1 byte/us, so service time is bytes * 1000 / mbps ns.
  // latency_scale slows the device the same way it slows the flat charges.
  const uint64_t service = static_cast<uint64_t>(
      static_cast<double>(bytes) * 1000.0 / static_cast<double>(mbps) *
      cfg_.latency_scale);
  if (service == 0) return;
  const uint64_t now = now_ns();
  auto& busy = dimm_state_[dimm].busy_until_ns;
  uint64_t prev = busy.load(std::memory_order_relaxed);
  uint64_t start;
  do {
    start = prev > now ? prev : now;
  } while (!busy.compare_exchange_weak(prev, start + service,
                                       std::memory_order_relaxed));
  const uint64_t stall = start - now;
  if (stall == 0) return;
  if (write) {
    c.nvm_dimm_write_stall_ns[dimm] += stall;
  } else {
    c.nvm_dimm_read_stall_ns[dimm] += stall;
  }
  // Backlog at arrival, in units of this request's own service time — i.e.
  // how many like-sized requests were queued ahead.
  c.nvm_dimm_queue_depth[dimm] += (stall + service - 1) / service;

  // Unlike the flat latency charges (CLWB/fence stalls the issuing core, so
  // spinning is the honest emulation), bandwidth backpressure is queueing
  // at the *device*: the core is free while the backlog drains. Sleep
  // instead of spin, so threads stalled on different DIMMs drain their
  // buckets in parallel — on few-core hosts a spin here would serialize
  // every bucket through the one core and no amount of traffic spreading
  // could ever help. Sub-quantum stalls accumulate into a per-thread debt
  // so we never ask the OS for sleeps below its timer resolution.
  constexpr uint64_t kSleepQuantumNs = 100 * 1000;
  static thread_local uint64_t stall_debt_ns = 0;
  stall_debt_ns += stall;
  if (stall_debt_ns >= kSleepQuantumNs) {
    const uint64_t ns = stall_debt_ns;
    stall_debt_ns = 0;
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
  }
}

void PmemPool::enable_crash_sim() {
  if (shadow_) return;
  HDNH_OBS_SPAN("crash_sim", "enable_crash_sim");
  shadow_ = static_cast<char*>(::malloc(size_));
  if (!shadow_) throw std::runtime_error("PmemPool: shadow alloc failed");
  std::memcpy(shadow_, base_, size_);
}

void PmemPool::disable_crash_sim() {
  ::free(shadow_);
  shadow_ = nullptr;
}

void PmemPool::evict_random_lines(uint64_t n, uint64_t seed) {
  if (!shadow_) return;
  HDNH_OBS_SPAN("crash_sim", "evict_random_lines");
  Rng rng(seed);
  const uint64_t lines = size_ / kCacheLine;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t line = rng.next_below(lines);
    std::memcpy(shadow_ + line * kCacheLine, base_ + line * kCacheLine,
                kCacheLine);
  }
}

void PmemPool::simulate_crash() {
  HDNH_OBS_SPAN("crash_sim", "simulate_crash");
  if (!shadow_) throw std::runtime_error("simulate_crash without crash sim");
  std::memcpy(base_, shadow_, size_);
}

void PmemPool::fault_event(FaultPlan* plan, uint32_t kind, const void* p,
                           uint64_t len) {
  const uint32_t kinds = kind | fault_scope_bits();
  if ((kinds & plan->mask) == 0) return;
  if (plan->range_len != 0) {
    // Per-shard injection: only persists touching the range count. Plain
    // fences carry no address, so a range-filtered plan never counts them.
    if (p == nullptr) return;
    const uint64_t off = to_off(p);
    if (off + len <= plan->range_off ||
        off >= plan->range_off + plan->range_len) {
      return;
    }
  }
  const uint64_t idx = plan->count.fetch_add(1, std::memory_order_relaxed);
  Stats::local().fault_events++;
  if (plan->evict_every != 0 && plan->evict_lines != 0 &&
      (idx + 1) % plan->evict_every == 0) {
    evict_random_lines(plan->evict_lines,
                       plan->seed ^ (idx * 0x9E3779B97F4A7C15ull));
  }
  if (idx == plan->crash_at &&
      !plan->fired.exchange(true, std::memory_order_acq_rel)) {
    if (plan->evict_lines_at_crash != 0) {
      evict_random_lines(plan->evict_lines_at_crash, plan->seed ^ idx);
    }
    Stats::local().fault_crashes++;
    HDNH_OBS_INSTANT("crash_sim", "fault_crash");
    simulate_crash();
    throw InjectedCrash();
  }
}

}  // namespace hdnh::nvm
