#include "nvm/pmem.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/random.h"

namespace hdnh::nvm {

PmemPool::PmemPool(uint64_t size, NvmConfig cfg, const std::string& backing_file)
    : cfg_(cfg) {
  size_ = (size + kNvmBlock - 1) / kNvmBlock * kNvmBlock;
  int flags = MAP_ANONYMOUS | MAP_PRIVATE;
  if (!backing_file.empty()) {
    struct stat st{};
    recovered_ = ::stat(backing_file.c_str(), &st) == 0 &&
                 static_cast<uint64_t>(st.st_size) >= size_;
    fd_ = ::open(backing_file.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0) throw std::runtime_error("PmemPool: cannot open " + backing_file);
    if (::ftruncate(fd_, static_cast<off_t>(size_)) != 0) {
      ::close(fd_);
      throw std::runtime_error("PmemPool: ftruncate failed");
    }
    flags = MAP_SHARED;
  }
  void* p = ::mmap(nullptr, size_, PROT_READ | PROT_WRITE, flags, fd_, 0);
  if (p == MAP_FAILED) {
    if (fd_ >= 0) ::close(fd_);
    throw std::runtime_error("PmemPool: mmap failed");
  }
  base_ = static_cast<char*>(p);
  if (cfg_.track_persistence) enable_crash_sim();
}

PmemPool::~PmemPool() {
  disable_crash_sim();
  if (base_) ::munmap(base_, size_);
  if (fd_ >= 0) ::close(fd_);
}

void PmemPool::persist(const void* p, uint64_t len) {
  auto& c = Stats::local();
  const uint64_t lines = span_units(p, len, kCacheLine);
  c.nvm_write_lines += lines;
  if (shadow_) {
    // Copy whole covered cachelines to the media image. Concurrent writers
    // to *other bytes* of a shared line are benign: each byte lands with
    // some coherent value, matching real CLWB semantics closely enough for
    // the crash tests (which only reason about bytes the flusher owns).
    const uint64_t a = reinterpret_cast<uint64_t>(p);
    const uint64_t first =
        (a & ~(kCacheLine - 1)) - reinterpret_cast<uint64_t>(base_);
    std::memcpy(shadow_ + first, base_ + first, lines * kCacheLine);
  }
  if (cfg_.emulate_latency) {
    spin_for_ns(static_cast<uint64_t>(
        static_cast<double>(lines * cfg_.write_ns_per_line) * cfg_.latency_scale));
  }
}

void PmemPool::enable_crash_sim() {
  if (shadow_) return;
  shadow_ = static_cast<char*>(::malloc(size_));
  if (!shadow_) throw std::runtime_error("PmemPool: shadow alloc failed");
  std::memcpy(shadow_, base_, size_);
}

void PmemPool::disable_crash_sim() {
  ::free(shadow_);
  shadow_ = nullptr;
}

void PmemPool::evict_random_lines(uint64_t n, uint64_t seed) {
  if (!shadow_) return;
  Rng rng(seed);
  const uint64_t lines = size_ / kCacheLine;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t line = rng.next_below(lines);
    std::memcpy(shadow_ + line * kCacheLine, base_ + line * kCacheLine,
                kCacheLine);
  }
}

void PmemPool::simulate_crash() {
  if (!shadow_) throw std::runtime_error("simulate_crash without crash sim");
  std::memcpy(base_, shadow_, size_);
}

}  // namespace hdnh::nvm
