#include "nvm/alloc.h"

#include <new>
#include <stdexcept>
#include <unordered_map>

namespace hdnh::nvm {

namespace {
// Process-unique allocator generations and thread tokens for the
// thread-chunk slot protocol (same scheme as LogStore's append heads).
std::atomic<uint64_t> g_alloc_gen{1};
std::atomic<uint64_t> g_alloc_thread_tokens{1};
}  // namespace

PmemAllocator::PmemAllocator(PmemPool& pool)
    : pool_(pool), base_(0), bytes_(pool.size()) {
  format_or_attach();
}

PmemAllocator::PmemAllocator(PmemPool& pool, uint64_t region_off,
                             uint64_t region_bytes)
    : pool_(pool), base_(region_off), bytes_(region_bytes) {
  if (base_ % kNvmBlock != 0) {
    throw std::invalid_argument("region_off must be kNvmBlock-aligned");
  }
  if (bytes_ < header_bytes() + kNvmBlock || base_ + bytes_ > pool.size()) {
    throw std::invalid_argument("allocator region out of pool bounds");
  }
  format_or_attach();
}

void PmemAllocator::format_or_attach() {
  instance_gen_.store(g_alloc_gen.fetch_add(1, std::memory_order_relaxed),
                      std::memory_order_relaxed);
  Header* h = hdr();
  if (h->magic == kMagic && h->pool_size == bytes_) {
    attached_ = true;
    // A region formatted in chunked mode resumes it transparently: the
    // chunk table is the recovery state (claimed chunks stay consumed).
    if (h->root_off[kChunkTableRoot] != 0) attach_chunks();
    return;
  }
  FaultScope tag(kFaultAllocCommit);
  std::memset(static_cast<void*>(h), 0, sizeof(Header));  // raw media format
  h->pool_size = bytes_;
  h->bump.store(base_ + header_bytes(), std::memory_order_relaxed);
  pool_.persist(h, sizeof(Header));
  pool_.fence();
  // Magic last: a crash mid-format leaves an unformatted pool, not a torn one.
  h->magic = kMagic;
  pool_.persist_fence(&h->magic, sizeof(h->magic));
}

uint64_t PmemAllocator::alloc(uint64_t size, uint64_t align) {
  size = (size + align - 1) / align * align;
  {
    std::lock_guard<std::mutex> lock(free_mu_);
    auto it = free_lists_.find(size);
    if (it != free_lists_.end() && !it->second.empty()) {
      uint64_t off = it->second.back();
      it->second.pop_back();
      return off;
    }
  }
  if (chunks_ != nullptr) {
    const uint64_t off = alloc_chunked(size, align);
    if (off != 0) return off;
    // Oversize, mid-size, or chunks/thread-slots exhausted: the shared
    // persistent bump still works, it just pays the metadata persist.
    Stats::local().alloc_shared_fallbacks++;
  }
  Header* h = hdr();
  uint64_t off;
  // CAS loop to keep the bump pointer aligned for arbitrary align values.
  uint64_t cur = h->bump.load(std::memory_order_relaxed);
  for (;;) {
    off = (cur + align - 1) / align * align;
    if (off + size > base_ + bytes_) throw std::bad_alloc();
    if (h->bump.compare_exchange_weak(cur, off + size,
                                      std::memory_order_relaxed)) {
      break;
    }
  }
  // Persist the advanced bump so a post-crash attach never re-hands-out
  // space a pre-crash caller may have linked into a durable structure.
  FaultScope tag(kFaultAllocCommit);
  pool_.persist_fence(&h->bump, sizeof(h->bump));
  return off;
}

void PmemAllocator::free_block(uint64_t off, uint64_t size) {
  size = (size + kNvmBlock - 1) / kNvmBlock * kNvmBlock;
  if (chunks_ != nullptr) {
    // A whole-chunk allocation returns to the persisted chunk table (so the
    // space survives restart as reusable), anything else to the volatile
    // free list as before. Whole chunks are recognizable exactly: chunk
    // aligned inside the arena with a rounded size only the whole-chunk
    // claim path can produce.
    const uint64_t cb = chunks_->chunk_bytes;
    const uint64_t arena = chunks_->arena_off;
    const uint64_t arena_end = arena + chunks_->chunk_count * cb;
    if (off >= arena && off < arena_end && (off - arena) % cb == 0 &&
        size > cb / 2 && size <= cb) {
      ChunkEntry& e = chunk_entries_[(off - arena) / cb];
      e.state.store(0, std::memory_order_release);
      FaultScope tag(kFaultAllocChunk);
      pool_.persist_fence(&e.state, sizeof(e.state));
      chunks_claimed_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
  }
  std::lock_guard<std::mutex> lock(free_mu_);
  free_lists_[size].push_back(off);
}

void PmemAllocator::enable_chunked(const ChunkConfig& cfg) {
  if (chunks_ != nullptr) return;
  if (root(kChunkTableRoot) != 0) {
    attach_chunks();
    return;
  }
  format_chunks(cfg);
}

void PmemAllocator::format_chunks(const ChunkConfig& cfg) {
  if (cfg.chunk_bytes < kNvmBlock * 16 ||
      (cfg.chunk_bytes & (cfg.chunk_bytes - 1)) != 0) {
    throw std::invalid_argument(
        "ChunkConfig.chunk_bytes must be a power of two >= 4 KiB");
  }
  uint64_t count = cfg.chunk_count;
  if (count == 0) {
    const uint64_t avail = remaining();
    const uint64_t reserve =
        cfg.reserve_bytes != 0 ? cfg.reserve_bytes : avail / 8;
    // Per chunk: the chunk itself plus its table entry; one extra
    // chunk_bytes of headroom absorbs the super block and arena alignment.
    if (avail < reserve + 2 * cfg.chunk_bytes) throw std::bad_alloc();
    count = (avail - reserve - cfg.chunk_bytes) /
            (cfg.chunk_bytes + sizeof(ChunkEntry));
  }
  if (count == 0) throw std::bad_alloc();
  const uint64_t table_bytes = kNvmBlock + count * sizeof(ChunkEntry);
  // Both allocations ride the shared bump path (chunks_ is still null), so
  // their space is already excluded from it when chunked mode goes live.
  const uint64_t table_off = alloc(table_bytes);
  const uint64_t arena_off = alloc(count * cfg.chunk_bytes, cfg.chunk_bytes);
  ChunkSuper* s = pool_.to_ptr<ChunkSuper>(table_off);
  FaultScope tag(kFaultAllocChunk);
  std::memset(static_cast<void*>(s), 0, table_bytes);
  s->chunk_bytes = cfg.chunk_bytes;
  s->chunk_count = count;
  s->arena_off = arena_off;
  s->small_max = cfg.small_max != 0 ? cfg.small_max : cfg.chunk_bytes / 8;
  s->dimms = pool_.dimm_count();
  s->interleave_bytes = pool_.config().dimm.interleave_bytes;
  pool_.persist(s, table_bytes);
  pool_.fence();
  // Magic, then the root slot, last: a crash anywhere above leaves the
  // allocator un-chunked with only bump space consumed — the same leak
  // contract as any torn allocation.
  s->magic = kChunkMagic;
  pool_.persist_fence(&s->magic, sizeof(s->magic));
  set_root(kChunkTableRoot, table_off, table_bytes);
  chunks_ = s;
  chunk_entries_ = pool_.to_ptr<ChunkEntry>(table_off + kNvmBlock);
  chunks_claimed_.store(0, std::memory_order_relaxed);
}

void PmemAllocator::attach_chunks() {
  const uint64_t table_off = hdr()->root_off[kChunkTableRoot];
  ChunkSuper* s = pool_.to_ptr<ChunkSuper>(table_off);
  pool_.on_read(s, sizeof(ChunkSuper));
  if (s->magic != kChunkMagic || s->chunk_count == 0 ||
      s->chunk_bytes == 0) {
    throw std::runtime_error("PmemAllocator: corrupt chunk table super");
  }
  chunks_ = s;
  chunk_entries_ = pool_.to_ptr<ChunkEntry>(table_off + kNvmBlock);
  // Recovery: walk the table and rebuild free space exactly. A claimed
  // entry stays consumed no matter what interior bump state the crash
  // interrupted (bounded leak); a free entry is immediately claimable.
  pool_.on_read(chunk_entries_, s->chunk_count * sizeof(ChunkEntry));
  uint64_t claimed = 0;
  for (uint64_t i = 0; i < s->chunk_count; ++i) {
    if (chunk_entries_[i].state.load(std::memory_order_relaxed) != 0) {
      ++claimed;
    }
  }
  chunks_claimed_.store(claimed, std::memory_order_relaxed);
}

PmemAllocator::ThreadChunk* PmemAllocator::my_chunk() {
  // Per-thread cache of "my slot in allocator generation G"; generations
  // are process-unique so stale entries from a destroyed allocator can
  // never alias a new one.
  thread_local std::unordered_map<uint64_t, uint32_t> cache;
  const uint64_t gen = instance_gen_.load(std::memory_order_relaxed);
  if (auto it = cache.find(gen); it != cache.end()) {
    return &thread_chunks_[it->second];
  }
  thread_local uint64_t token =
      g_alloc_thread_tokens.fetch_add(1, std::memory_order_relaxed);
  uint32_t s = static_cast<uint32_t>(token % kMaxThreadChunks);
  for (uint32_t probes = 0; probes < kMaxThreadChunks; ++probes) {
    uint64_t expected = 0;
    if (thread_chunks_[s].owner.compare_exchange_strong(
            expected, token, std::memory_order_acq_rel)) {
      thread_chunks_[s].home_dimm =
          next_home_.fetch_add(1, std::memory_order_relaxed) %
          (pool_.dimm_count() != 0 ? pool_.dimm_count() : 1);
      cache.emplace(gen, s);
      return &thread_chunks_[s];
    }
    s = (s + 1) % kMaxThreadChunks;
  }
  return nullptr;  // more threads than slots: shared-path fallback
}

int64_t PmemAllocator::claim_chunk(uint32_t home_dimm) {
  const uint64_t n = chunks_->chunk_count;
  const uint64_t cb = chunks_->chunk_bytes;
  const uint64_t arena = chunks_->arena_off;
  const bool affine = pool_.dimm_count() > 1;
  const uint64_t start = chunk_scan_.fetch_add(1, std::memory_order_relaxed);
  for (int pass = affine ? 0 : 1; pass < 2; ++pass) {
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t idx = (start + i) % n;
      // Pass 0 takes only home-DIMM chunks; pass 1 takes anything free.
      if (pass == 0 && pool_.dimm_of(arena + idx * cb) != home_dimm) continue;
      ChunkEntry& e = chunk_entries_[idx];
      uint64_t expected = 0;
      if (e.state.load(std::memory_order_relaxed) != 0) continue;
      if (!e.state.compare_exchange_strong(expected, 1,
                                           std::memory_order_acq_rel)) {
        continue;
      }
      // Persist the claim BEFORE handing the chunk out: a crash here
      // leaves the chunk free (claim never reached media — nothing can
      // reference it yet) or claimed-but-empty (a bounded leak), never
      // handed out twice.
      FaultScope tag(kFaultAllocChunk);
      pool_.persist_fence(&e.state, sizeof(e.state));
      chunks_claimed_.fetch_add(1, std::memory_order_relaxed);
      Stats::local().alloc_chunks_claimed++;
      return static_cast<int64_t>(idx);
    }
  }
  return -1;
}

uint64_t PmemAllocator::alloc_chunked(uint64_t size, uint64_t align) {
  const uint64_t cb = chunks_->chunk_bytes;
  if (size > cb || align > cb) return 0;
  if (size > chunks_->small_max) {
    if (size <= cb / 2) return 0;  // mid-size: not worth a whole chunk
    // Chunk-sized request (value-log segments size themselves to match):
    // claim a whole chunk, preferably on the thread's home DIMM.
    ThreadChunk* tc = my_chunk();
    const int64_t c = claim_chunk(tc != nullptr ? tc->home_dimm : 0);
    if (c < 0) return 0;
    return chunks_->arena_off + static_cast<uint64_t>(c) * cb;
  }
  ThreadChunk* tc = my_chunk();
  if (tc == nullptr) return 0;
  // The bump itself touches no shared state and persists nothing: the
  // chunk claim already made the space unavailable to post-crash attaches.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const uint64_t off = (tc->cur + align - 1) / align * align;
    if (tc->cur != 0 && off + size <= tc->end) {
      tc->cur = off + size;
      Stats::local().alloc_chunk_bytes += size;
      return off;
    }
    const int64_t c = claim_chunk(tc->home_dimm);
    if (c < 0) return 0;
    tc->cur = chunks_->arena_off + static_cast<uint64_t>(c) * cb;
    tc->end = tc->cur + cb;
  }
  return 0;
}

bool PmemAllocator::chunk_stats(ChunkStats* out) const {
  if (chunks_ == nullptr) return false;
  out->chunk_bytes = chunks_->chunk_bytes;
  out->chunk_count = chunks_->chunk_count;
  out->claimed = chunks_claimed_.load(std::memory_order_relaxed);
  out->table_off = hdr()->root_off[kChunkTableRoot];
  out->arena_off = chunks_->arena_off;
  out->small_max = chunks_->small_max;
  out->dimms = chunks_->dimms != 0 ? chunks_->dimms : 1;
  out->interleave_bytes = chunks_->interleave_bytes;
  return true;
}

bool PmemAllocator::chunk_claimed(uint64_t idx) const {
  return chunks_ != nullptr && idx < chunks_->chunk_count &&
         chunk_entries_[idx].state.load(std::memory_order_relaxed) != 0;
}

uint64_t PmemAllocator::root(int slot) const { return hdr()->root_off[slot]; }
uint64_t PmemAllocator::root_size(int slot) const {
  return hdr()->root_size[slot];
}

void PmemAllocator::set_root(int slot, uint64_t off, uint64_t size) {
  FaultScope tag(kFaultRootCommit);
  Header* h = hdr();
  // root_size first, root_off last: the off word is the publication guard,
  // so a crash between the two persists leaves the slot unpublished (a size
  // without an offset is never read) rather than half-published.
  h->root_size[slot] = size;
  pool_.persist_fence(&h->root_size[slot], sizeof(uint64_t));
  h->root_off[slot] = off;
  pool_.persist_fence(&h->root_off[slot], sizeof(uint64_t));
}

uint64_t PmemAllocator::used() const {
  return hdr()->bump.load(std::memory_order_relaxed) - base_ - header_bytes();
}

uint64_t PmemAllocator::remaining() const {
  const uint64_t bump = hdr()->bump.load(std::memory_order_relaxed);
  const uint64_t end = base_ + bytes_;
  return bump < end ? end - bump : 0;
}

}  // namespace hdnh::nvm
