#include "nvm/alloc.h"

#include <new>
#include <stdexcept>

namespace hdnh::nvm {

PmemAllocator::PmemAllocator(PmemPool& pool)
    : pool_(pool), base_(0), bytes_(pool.size()) {
  format_or_attach();
}

PmemAllocator::PmemAllocator(PmemPool& pool, uint64_t region_off,
                             uint64_t region_bytes)
    : pool_(pool), base_(region_off), bytes_(region_bytes) {
  if (base_ % kNvmBlock != 0) {
    throw std::invalid_argument("region_off must be kNvmBlock-aligned");
  }
  if (bytes_ < header_bytes() + kNvmBlock || base_ + bytes_ > pool.size()) {
    throw std::invalid_argument("allocator region out of pool bounds");
  }
  format_or_attach();
}

void PmemAllocator::format_or_attach() {
  Header* h = hdr();
  if (h->magic == kMagic && h->pool_size == bytes_) {
    attached_ = true;
    return;
  }
  FaultScope tag(kFaultAllocCommit);
  std::memset(static_cast<void*>(h), 0, sizeof(Header));  // raw media format
  h->pool_size = bytes_;
  h->bump.store(base_ + header_bytes(), std::memory_order_relaxed);
  pool_.persist(h, sizeof(Header));
  pool_.fence();
  // Magic last: a crash mid-format leaves an unformatted pool, not a torn one.
  h->magic = kMagic;
  pool_.persist_fence(&h->magic, sizeof(h->magic));
}

uint64_t PmemAllocator::alloc(uint64_t size, uint64_t align) {
  size = (size + align - 1) / align * align;
  {
    std::lock_guard<std::mutex> lock(free_mu_);
    auto it = free_lists_.find(size);
    if (it != free_lists_.end() && !it->second.empty()) {
      uint64_t off = it->second.back();
      it->second.pop_back();
      return off;
    }
  }
  Header* h = hdr();
  uint64_t off;
  // CAS loop to keep the bump pointer aligned for arbitrary align values.
  uint64_t cur = h->bump.load(std::memory_order_relaxed);
  for (;;) {
    off = (cur + align - 1) / align * align;
    if (off + size > base_ + bytes_) throw std::bad_alloc();
    if (h->bump.compare_exchange_weak(cur, off + size,
                                      std::memory_order_relaxed)) {
      break;
    }
  }
  // Persist the advanced bump so a post-crash attach never re-hands-out
  // space a pre-crash caller may have linked into a durable structure.
  FaultScope tag(kFaultAllocCommit);
  pool_.persist_fence(&h->bump, sizeof(h->bump));
  return off;
}

void PmemAllocator::free_block(uint64_t off, uint64_t size) {
  size = (size + kNvmBlock - 1) / kNvmBlock * kNvmBlock;
  std::lock_guard<std::mutex> lock(free_mu_);
  free_lists_[size].push_back(off);
}

uint64_t PmemAllocator::root(int slot) const { return hdr()->root_off[slot]; }
uint64_t PmemAllocator::root_size(int slot) const {
  return hdr()->root_size[slot];
}

void PmemAllocator::set_root(int slot, uint64_t off, uint64_t size) {
  FaultScope tag(kFaultRootCommit);
  Header* h = hdr();
  // root_size first, root_off last: the off word is the publication guard,
  // so a crash between the two persists leaves the slot unpublished (a size
  // without an offset is never read) rather than half-published.
  h->root_size[slot] = size;
  pool_.persist_fence(&h->root_size[slot], sizeof(uint64_t));
  h->root_off[slot] = off;
  pool_.persist_fence(&h->root_off[slot], sizeof(uint64_t));
}

uint64_t PmemAllocator::used() const {
  return hdr()->bump.load(std::memory_order_relaxed) - base_ - header_bytes();
}

uint64_t PmemAllocator::remaining() const {
  const uint64_t bump = hdr()->bump.load(std::memory_order_relaxed);
  const uint64_t end = base_ + bytes_;
  return bump < end ? end - bump : 0;
}

}  // namespace hdnh::nvm
