#include "nvm/fault.h"

namespace hdnh::nvm {

namespace {
thread_local uint32_t t_fault_scope_bits = 0;
}  // namespace

FaultScope::FaultScope(uint32_t bits) : prev_(t_fault_scope_bits) {
  t_fault_scope_bits = prev_ | bits;
}

FaultScope::~FaultScope() { t_fault_scope_bits = prev_; }

uint32_t fault_scope_bits() { return t_fault_scope_bits; }

}  // namespace hdnh::nvm
