// Configuration of the emulated persistent-memory device.
//
// The defaults model Intel Optane DCPMM (AEP) as characterised by Yang et
// al., "An Empirical Guide to the Behavior and Use of Scalable Persistent
// Memory" (the paper's reference [30]) and by the HDNH paper's §2.1:
//   * read latency ~3x DRAM, and reads must touch media on a cache miss;
//   * writes commit at the ADR domain, so software-visible write latency is
//     close to DRAM — but write *bandwidth* is ~1/6 of DRAM;
//   * media is accessed in 256 B blocks (vs 64 B cachelines), so small random
//     reads pay for a whole block (read amplification).
//
// We charge those costs with calibrated spin-waits at the access points the
// schemes already have to annotate for persistence, and we count every
// access so benches can report NVM traffic per operation (which is the
// paper's causal story, independent of how many cores this host has).
#pragma once

#include <cstdint>

namespace hdnh::nvm {

inline constexpr uint64_t kCacheLine = 64;
inline constexpr uint64_t kNvmBlock = 256;  // AEP internal access granularity

// Capacity (in blocks) of the per-thread read-ahead window that
// PmemPool::prefetch_block feeds — the emulated device's read buffer.
// Power of two; the window is direct-mapped on the block number.
inline constexpr uint64_t kPrefetchWindowBlocks = 128;

struct NvmConfig {
  // Emulate latency with spin-waits. Off → only counters are maintained
  // (used by unit tests, which care about semantics, not timing).
  bool emulate_latency = false;

  // Cost of one 256 B block read from NVM media (DRAM ~100ns; AEP ~300ns+).
  uint64_t read_ns_per_block = 300;

  // Cost charged per cacheline at persist time (CLWB reaching the ADR
  // domain plus the bandwidth share: AEP write bw is ~1/6 DRAM).
  uint64_t write_ns_per_line = 100;

  // Cost of an SFENCE draining the store buffer.
  uint64_t fence_ns = 30;

  // Track persisted-vs-volatile cachelines in a shadow "media" image so a
  // crash can be simulated (see PmemPool::simulate_crash). Costs a full
  // second copy of the pool; used by recovery tests/benches.
  bool track_persistence = false;

  // Scale all latency costs (bench sweeps); 0 disables like emulate_latency=false.
  double latency_scale = 1.0;
};

}  // namespace hdnh::nvm
