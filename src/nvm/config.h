// Configuration of the emulated persistent-memory device.
//
// The defaults model Intel Optane DCPMM (AEP) as characterised by Yang et
// al., "An Empirical Guide to the Behavior and Use of Scalable Persistent
// Memory" (the paper's reference [30]) and by the HDNH paper's §2.1:
//   * read latency ~3x DRAM, and reads must touch media on a cache miss;
//   * writes commit at the ADR domain, so software-visible write latency is
//     close to DRAM — but write *bandwidth* is ~1/6 of DRAM;
//   * media is accessed in 256 B blocks (vs 64 B cachelines), so small random
//     reads pay for a whole block (read amplification).
//
// We charge those costs with calibrated spin-waits at the access points the
// schemes already have to annotate for persistence, and we count every
// access so benches can report NVM traffic per operation (which is the
// paper's causal story, independent of how many cores this host has).
#pragma once

#include <cstdint>

namespace hdnh::nvm {

inline constexpr uint64_t kCacheLine = 64;
inline constexpr uint64_t kNvmBlock = 256;  // AEP internal access granularity

// Capacity (in blocks) of the per-thread read-ahead window that
// PmemPool::prefetch_block feeds — the emulated device's read buffer.
// Power of two; the window is direct-mapped on the block number.
inline constexpr uint64_t kPrefetchWindowBlocks = 128;

// Upper bound on emulated DIMMs per pool; sizes the per-DIMM counter arrays
// in nvm::Stats. Real AEP platforms top out at 6 DIMMs per socket.
inline constexpr uint32_t kMaxDimms = 16;

// Emulated DIMM topology and per-DIMM bandwidth ceilings. Peng et al.
// ("System Evaluation of the Intel Optane Byte-addressable NVM") measure
// per-DIMM bandwidth ceilings — ~2.3 GB/s write, ~6.6 GB/s read per module
// — with throughput scaling across DIMMs only when traffic actually spreads
// across them. With dimms > 1 every persist/read is attributed to the DIMM
// owning its offset, and an optional token bucket per DIMM converts
// oversubscription into stall time charged to the requesting thread.
//
// The default (dimms = 1, caps = 0) is the flat legacy device: no extra
// latency, no per-DIMM state touched — byte-for-byte and ns-for-ns
// identical to the pre-DIMM emulator.
struct DimmConfig {
  // Number of emulated DIMMs. 1 = flat model (all DIMM logic bypassed).
  uint32_t dimms = 1;

  // Interleave granularity: offset off lives on DIMM (off / interleave) %
  // dimms, the classic striped "interleaved namespace" layout. 0 selects
  // contiguous per-DIMM slices (size/dimms each) — the "dedicated
  // namespace per DIMM" layout. Rounded up to a 256 B block multiple.
  uint64_t interleave_bytes = 1ull << 20;

  // Per-DIMM bandwidth caps in MB/s (1 MB/s == 1 byte/us). 0 = uncapped:
  // bytes are attributed to DIMMs but no stall is ever charged. Calibrate
  // against Peng et al.: ~2300 write / ~6600 read per DIMM, scaled down by
  // the same factor as the latency constants when the host CPU cannot
  // generate hardware-scale demand (see docs/nvm_emulation.md).
  uint64_t write_mbps = 0;
  uint64_t read_mbps = 0;
};

struct NvmConfig {
  // Emulate latency with spin-waits. Off → only counters are maintained
  // (used by unit tests, which care about semantics, not timing).
  bool emulate_latency = false;

  // Cost of one 256 B block read from NVM media (DRAM ~100ns; AEP ~300ns+).
  uint64_t read_ns_per_block = 300;

  // Cost charged per cacheline at persist time (CLWB reaching the ADR
  // domain plus the bandwidth share: AEP write bw is ~1/6 DRAM).
  uint64_t write_ns_per_line = 100;

  // Cost of an SFENCE draining the store buffer.
  uint64_t fence_ns = 30;

  // Track persisted-vs-volatile cachelines in a shadow "media" image so a
  // crash can be simulated (see PmemPool::simulate_crash). Costs a full
  // second copy of the pool; used by recovery tests/benches.
  bool track_persistence = false;

  // Scale all latency costs (bench sweeps); 0 disables like emulate_latency=false.
  double latency_scale = 1.0;

  // DIMM topology + per-DIMM bandwidth model (flat single-DIMM by default).
  DimmConfig dimm;
};

}  // namespace hdnh::nvm
