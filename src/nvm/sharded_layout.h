// Carves one PmemPool into independent per-shard allocator regions and
// routes keys to them through a persisted extendible-hashing directory.
//
// The parent allocator (whole-pool header at offset 0) stays the owner of
// the pool; the sharded layout allocates one large region per shard from it
// and records the carve in a persisted ShardMapSuper reachable through a
// parent root slot. Each region gets its own PmemAllocator — its own root
// directory, bump pointer, and exhaustion boundary — so every shard is a
// fully independent recovery and allocation domain: a table superblock in
// shard 3's roots is invisible to shard 5, and shard 3 running out of space
// throws without disturbing its neighbours.
//
// v2 (format "HDNHSHR2") replaces the fixed shard count with an extendible
// directory: 2^global_depth entries, each naming a shard, plus a per-shard
// local depth. A key routes by the top global_depth bits of its remixed
// primary hash, so doubling the directory is new[i] = old[i >> 1] and an
// overloaded shard splits alone — its sibling entries retarget to a freshly
// carved region while every other shard's routing bits stay untouched.
// The directory is persisted as an A/B pair of ShardDirRecords selected by
// a single 8-byte `dir_active` word: a split composes the successor record
// in the inactive slot, persists it, and flips the selector — the one
// crash-atomic commit point of the whole split, swept by crashkit under
// the kFaultShardSplit taxonomy tag. Recovery therefore sees either the
// pre-split directory (the carved target region is reset and reused) or
// the fully published one (the facade finishes the idempotent cleanup).
//
// Regions are carved up-front for `max_shards` (the split headroom), but
// only the directory's `shard_count` of them are active; `begin_split`
// claims the next spare. The carve itself keeps the v1 format protocol:
// regions and the map payload persist before the magic, the magic before
// the parent root slot — a crash mid-format leaves no map at all.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nvm/alloc.h"

namespace hdnh::nvm {

// One self-contained directory state: flipping `dir_active` between the
// two records in ShardMapSuper publishes a split atomically.
struct ShardDirRecord {
  uint32_t global_depth;
  uint32_t shard_count;              // active shards (== regions in use)
  uint64_t seq;                      // monotone publish epoch
  uint8_t local_depth[64];
  uint8_t entry[64];                 // dir entry -> shard id (2^depth used)
};

struct ShardMapSuper {
  static constexpr uint64_t kMagic = 0x48444E4853485232ULL;    // "HDNHSHR2"
  static constexpr uint64_t kMagicV1 = 0x48444E485348524DULL;  // "HDNHSHRM"
  static constexpr uint32_t kMaxShards = 64;
  static constexpr uint32_t kMaxDepth = 6;  // 2^6 = kMaxShards

  uint64_t magic;
  uint32_t region_count;             // carved regions (active + spares)
  uint32_t dimms;                    // pool DIMM count at carve time (1 = flat)
  uint64_t shard_off[kMaxShards];    // region base, kNvmBlock-aligned
  uint64_t shard_bytes[kMaxShards];  // region size
  // DIMM placement of the carve, persisted so offline tools (hdnh_doctor)
  // can print the shard→DIMM map without knowing the pool's runtime config.
  uint64_t interleave_bytes;         // stripe size; 0 = per-DIMM slices
  uint8_t shard_dimm[kMaxShards];    // home DIMM of each region base

  // The extendible directory: dir[dir_active & 1] is live. Flipping
  // dir_active is the split commit point.
  uint64_t dir_active;
  ShardDirRecord dir[2];

  // Split progress marker — advisory only (the directory flip is the
  // commit point): 1 while a split is between begin_split and the facade's
  // post-publish cleanup. Recovery uses it to reset an unpublished target
  // region or to finish the idempotent cleanup of a published one.
  uint64_t split_state;
  uint32_t split_source;
  uint32_t split_target;
};

class ShardedPmemLayout {
 public:
  // Parent root slot holding the shard map. Table superblocks use the low
  // slots of their own per-shard allocators, so the top parent slot is free.
  static constexpr int kShardMapRoot = PmemAllocator::kRoots - 1;

  // Formats a fresh carve, or attaches to the persisted shard map if the
  // pool already carries one — in which case the persisted directory
  // overrides both `shards` and `max_shards`. A fresh format carves
  // max(shards, max_shards) equal regions (of `bytes_per_shard` each when
  // nonzero) and activates `shards` of them in the initial directory; the
  // spares are the headroom begin_split() claims later.
  explicit ShardedPmemLayout(PmemAllocator& parent, uint32_t shards,
                             uint64_t bytes_per_shard = 0,
                             int root_slot = kShardMapRoot,
                             uint32_t max_shards = 0);

  bool attached_existing() const { return attached_; }
  uint32_t shards() const { return rec().shard_count; }
  uint32_t regions() const { return map_->region_count; }
  PmemAllocator& shard_alloc(uint32_t s) { return *allocs_[s]; }
  uint64_t shard_off(uint32_t s) const { return map_->shard_off[s]; }
  uint64_t shard_bytes(uint32_t s) const { return map_->shard_bytes[s]; }
  // Persisted home DIMM of shard s's region base (0 on a flat pool).
  uint32_t shard_dimm(uint32_t s) const { return map_->shard_dimm[s]; }
  // Persisted DIMM geometry of the carve (1 / 0 on a flat pool).
  uint32_t dimms() const { return map_->dimms; }
  uint64_t interleave_bytes() const { return map_->interleave_bytes; }

  // ---- directory --------------------------------------------------------
  uint32_t global_depth() const { return rec().global_depth; }
  uint32_t local_depth(uint32_t s) const { return rec().local_depth[s]; }
  uint32_t dir_entries() const { return 1u << rec().global_depth; }
  // Shard owning directory entry e (e < dir_entries()). Keys address the
  // directory by the top global_depth bits of their remixed primary hash
  // (store::shard_route_entry), so doubling never moves a key.
  uint32_t dir_shard(uint32_t e) const { return rec().entry[e]; }
  // Publish epoch: bumps exactly once per published split.
  uint64_t dir_seq() const { return rec().seq; }

  // ---- split machine ----------------------------------------------------
  // True while a split is between begin_split and clear_split_state.
  bool split_in_progress() const { return map_->split_state != 0; }
  uint32_t split_source() const { return map_->split_source; }
  uint32_t split_target() const { return map_->split_target; }
  // True when the split was published but the facade's source-side cleanup
  // has not yet been confirmed (the state recovery hands to the facade).
  bool split_cleanup_pending() const {
    return split_in_progress() && map_->split_target < shards();
  }

  // A split of `s` can proceed: no split in flight, a spare region exists,
  // and s's local depth is below kMaxDepth.
  bool can_split(uint32_t s) const;
  // Starts a split of `source`: persists the split marker, resets the next
  // spare region and formats a fresh allocator over it. Returns the target
  // shard id (== current shards()). The caller migrates the keys and then
  // either publish_split() or abort_split(). Throws std::logic_error when
  // !can_split(source).
  uint32_t begin_split(uint32_t source);
  // Composes the successor directory (target activated, depths bumped,
  // entries retargeted, seq+1) in the inactive record and flips dir_active
  // — the crash-atomic commit. split_state stays set until
  // clear_split_state() confirms the facade's cleanup ran.
  void publish_split();
  // Abandons an unpublished split: clears the marker and resets the target
  // region so a later split can reuse it.
  void abort_split();
  // Confirms the post-publish cleanup; clears the marker.
  void clear_split_state();

  // True if `parent` already carries a shard map in `root_slot`.
  static bool present(const PmemAllocator& parent,
                      int root_slot = kShardMapRoot);

  // Fixed metadata cost of an N-region carve on top of the payload regions:
  // the shard-map superblock, each region's allocator header, and one block
  // of alignment slack per region. pool_bytes_hint uses this so sized pools
  // do not overflow at high shard counts.
  static uint64_t overhead_bytes(uint32_t shards) {
    const uint64_t map = (sizeof(ShardMapSuper) + kNvmBlock - 1) / kNvmBlock *
                         kNvmBlock;
    return map + shards * (PmemAllocator::header_bytes() + kNvmBlock);
  }

  // Splits shard `src` inside a directory record: doubles the directory if
  // src's local depth equals the global depth, retargets the upper half of
  // src's entries to `tgt`, bumps both local depths and shard_count.
  // Exposed for the directory unit tests; returns false when src is at
  // kMaxDepth.
  static bool split_record(ShardDirRecord* rec, uint32_t src, uint32_t tgt);

 private:
  const ShardDirRecord& rec() const { return map_->dir[map_->dir_active & 1]; }
  ShardDirRecord& inactive_rec() { return map_->dir[(map_->dir_active & 1) ^ 1]; }
  // Zeroes a spare region's allocator header so construction re-formats it.
  void reset_region(uint32_t r);

  PmemAllocator& parent_;
  ShardMapSuper* map_ = nullptr;
  bool attached_ = false;
  std::vector<std::unique_ptr<PmemAllocator>> allocs_;  // per region; spares null
};

}  // namespace hdnh::nvm
