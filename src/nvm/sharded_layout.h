// Carves one PmemPool into N independent per-shard allocator regions.
//
// The parent allocator (whole-pool header at offset 0) stays the owner of
// the pool; the sharded layout allocates one large region per shard from it
// and records the carve in a persisted ShardMapSuper reachable through a
// parent root slot. Each region gets its own PmemAllocator — its own root
// directory, bump pointer, and exhaustion boundary — so every shard is a
// fully independent recovery and allocation domain: a table superblock in
// shard 3's roots is invisible to shard 5, and shard 3 running out of space
// throws without disturbing its neighbours.
//
// Crash safety mirrors the allocator's own format protocol: the shard map
// is fully written and persisted before its magic, and the magic before the
// parent root slot is set. A crash mid-format leaves the root slot empty
// (the next construction re-formats; the partially carved regions leak,
// which is the allocator's documented crash-leak semantics). On attach the
// *persisted* shard count wins over the requested one — the carve is part
// of the pool's durable identity, like a table's geometry.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nvm/alloc.h"

namespace hdnh::nvm {

struct ShardMapSuper {
  static constexpr uint64_t kMagic = 0x48444E485348524DULL;  // "HDNHSHRM"
  static constexpr uint32_t kMaxShards = 64;

  uint64_t magic;
  uint32_t shard_count;
  uint32_t dimms;                    // pool DIMM count at carve time (1 = flat)
  uint64_t shard_off[kMaxShards];    // region base, kNvmBlock-aligned
  uint64_t shard_bytes[kMaxShards];  // region size
  // DIMM placement of the carve, persisted so offline tools (hdnh_doctor)
  // can print the shard→DIMM map without knowing the pool's runtime config.
  uint64_t interleave_bytes;         // stripe size; 0 = per-DIMM slices
  uint8_t shard_dimm[kMaxShards];    // home DIMM of each region base
};

class ShardedPmemLayout {
 public:
  // Parent root slot holding the shard map. Table superblocks use the low
  // slots of their own per-shard allocators, so the top parent slot is free.
  static constexpr int kShardMapRoot = PmemAllocator::kRoots - 1;

  // Formats a fresh carve of `shards` regions (equal split of the parent's
  // remaining space, or `bytes_per_shard` each when nonzero), or attaches to
  // the persisted shard map if the pool already carries one — in which case
  // the persisted shard count overrides `shards`.
  explicit ShardedPmemLayout(PmemAllocator& parent, uint32_t shards,
                             uint64_t bytes_per_shard = 0,
                             int root_slot = kShardMapRoot);

  bool attached_existing() const { return attached_; }
  uint32_t shards() const { return shard_count_; }
  PmemAllocator& shard_alloc(uint32_t s) { return *allocs_[s]; }
  uint64_t shard_off(uint32_t s) const { return map_->shard_off[s]; }
  uint64_t shard_bytes(uint32_t s) const { return map_->shard_bytes[s]; }
  // Persisted home DIMM of shard s's region base (0 on a flat pool).
  uint32_t shard_dimm(uint32_t s) const { return map_->shard_dimm[s]; }
  // Persisted DIMM geometry of the carve (1 / 0 on a flat pool).
  uint32_t dimms() const { return map_->dimms; }
  uint64_t interleave_bytes() const { return map_->interleave_bytes; }

  // True if `parent` already carries a shard map in `root_slot`.
  static bool present(const PmemAllocator& parent,
                      int root_slot = kShardMapRoot);

  // Fixed metadata cost of an N-shard carve on top of the payload regions:
  // the shard-map superblock, each region's allocator header, and one block
  // of alignment slack per region. pool_bytes_hint uses this so sized pools
  // do not overflow at high shard counts.
  static uint64_t overhead_bytes(uint32_t shards) {
    const uint64_t map = (sizeof(ShardMapSuper) + kNvmBlock - 1) / kNvmBlock *
                         kNvmBlock;
    return map + shards * (PmemAllocator::header_bytes() + kNvmBlock);
  }

 private:
  PmemAllocator& parent_;
  ShardMapSuper* map_ = nullptr;
  uint32_t shard_count_ = 0;
  bool attached_ = false;
  std::vector<std::unique_ptr<PmemAllocator>> allocs_;
};

}  // namespace hdnh::nvm
