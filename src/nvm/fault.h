// Deterministic crash-point fault injection.
//
// The emulated ADR model gives us something real Optane setups lack: every
// durability event — a persist (CLWB set), a fence (SFENCE), an allocator
// bump/root commit — passes through PmemPool, so a test can crash the pool
// at *exactly the k-th event* and replay that point forever. A FaultPlan
// armed on a pool counts matching events and, at the chosen index, runs an
// optional adversarial eviction burst, snaps the live image to the media
// image (simulate_crash) and throws InjectedCrash to unwind the operation
// in flight — precisely what power loss at that instant would leave behind.
//
// Event taxonomy: each event carries a mechanical kind bit (persist/fence;
// persist_fence is simply both, back to back) OR-ed with the calling
// thread's FaultScope bits — the logical phase the persistence stack is in
// (allocator commit, resize swap, rehash drain, log replay, recovery).
// Plans filter on any subset via `mask`, so a sweep can target "every event
// inside the rehash drain" without counting the workload around it.
//
// Determinism contract: with single-writer workloads (background hot-table
// mirroring included — bg writers never touch the pool) the event sequence
// is a pure function of the op stream, so a failing crash point is fully
// reproduced by its (scenario, event_index, seed) triple. See
// docs/crash_testing.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>

namespace hdnh::nvm {

// Event taxonomy bits. Low bits are the mechanical event kind (set by the
// pool itself), high bits are logical-phase tags contributed by FaultScope.
enum FaultKind : uint32_t {
  kFaultPersist = 1u << 0,  // persist() entry (before lines reach media)
  kFaultFence = 1u << 1,    // fence() entry (before the ordering point)
  // Phase tags (FaultScope):
  kFaultAllocCommit = 1u << 8,   // PmemAllocator bump persist / format
  kFaultRootCommit = 1u << 9,    // PmemAllocator root-slot publish
  kFaultResizeSwap = 1u << 10,   // resize steps 1-3: snapshot/alloc/swap
  kFaultRehash = 1u << 11,       // old-level drain (fresh or resumed)
  kFaultResizeFinish = 1u << 12, // steady-state republish tail of a resize
  kFaultLogReplay = 1u << 13,    // update-log replay during recovery
  kFaultRecovery = 1u << 14,     // anywhere inside attach_and_recover
  kFaultVkvAppend = 1u << 15,    // value-log record write (vkv::LogStore)
  kFaultVkvSeal = 1u << 16,      // value-log segment state transition
  kFaultVkvGc = 1u << 17,        // value-log GC relocate/retire
  kFaultAllocChunk = 1u << 18,   // chunk-table claim/free/format persist
  kFaultShardSplit = 1u << 19,   // shard-directory split machine (layout
                                 //   begin/publish/abort + migration copies)
  kFaultAnyKind = 0xFFFFFFFFu,
};

// Thrown by the pool when a FaultPlan fires: the operation in flight must
// unwind and the table object be abandoned (the media image already holds
// the crash state). guard() deliberately does not convert this — it must
// reach the test harness.
struct InjectedCrash : public std::exception {
  const char* what() const noexcept override {
    return "injected crash (nvm::FaultPlan fired)";
  }
};

// A crash-point plan, armed on a PmemPool via set_fault_plan(). The pool
// counts every durability event whose taxonomy bits intersect `mask` (and,
// when range_len != 0, whose address range intersects
// [range_off, range_off+range_len) — address-less events, i.e. plain
// fences, never match a range filter). At counted index `crash_at` the
// plan fires once: optional eviction burst, simulate_crash(), throw
// InjectedCrash. With crash_at == kNever the plan only counts — a probe
// run that measures how many crash points a scenario has.
struct FaultPlan {
  static constexpr uint64_t kNever = ~0ull;

  uint64_t crash_at = kNever;     // 0-based counted-event index to crash at
  uint32_t mask = kFaultAnyKind;  // taxonomy filter
  uint64_t range_off = 0;         // optional pool-offset filter (per-shard
  uint64_t range_len = 0;         //   injection); 0 len = no filter
  // Adversarial cache pressure: every `evict_every`-th counted event evicts
  // `evict_lines` random live lines to media, and `evict_lines_at_crash`
  // more land right before the crash fires — spontaneous writebacks are
  // legal at any time on real hardware, so no oracle may depend on a line
  // staying volatile.
  uint64_t evict_every = 0;
  uint64_t evict_lines = 0;
  uint64_t evict_lines_at_crash = 0;
  uint64_t seed = 0;  // derives the eviction line choices

  std::atomic<uint64_t> count{0};  // counted events so far
  std::atomic<bool> fired{false};  // the crash has been injected

  uint64_t events() const { return count.load(std::memory_order_relaxed); }
};

// RAII logical-phase tag for the calling thread: events it emits while the
// scope is live carry `bits` OR-ed into their taxonomy. Scopes nest by
// OR-ing (an allocator commit inside recovery is both).
class FaultScope {
 public:
  explicit FaultScope(uint32_t bits);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  uint32_t prev_;
};

// The calling thread's current phase bits (0 outside any FaultScope).
uint32_t fault_scope_bits();

}  // namespace hdnh::nvm
