// Emulated persistent-memory pool.
//
// A PmemPool is a (optionally file-backed) mapped region standing in for an
// App Direct DAX mapping. All schemes:
//   * place durable data inside the pool and address it by *offset* (so a
//     remap after restart/crash is transparent);
//   * annotate media reads with on_read() — this charges AEP read latency in
//     256 B block granularity and feeds the stats counters;
//   * make stores durable with persist()/fence(), our CLWB/SFENCE stand-ins.
//
// Crash simulation: with persistence tracking enabled the pool keeps a
// shadow "media" image. persist() copies the covered cachelines to the
// shadow; anything never persisted simply does not exist on media. The cache
// is also allowed to evict lines at any time (evict_random_lines models
// that, for adversarial tests). simulate_crash() replaces the live region
// with the media image — exactly the state a real power loss would leave —
// after which recovery code can run in-process.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/clock.h"
#include "nvm/config.h"
#include "nvm/fault.h"
#include "nvm/stats.h"

namespace hdnh::nvm {

class PmemPool {
 public:
  // Size is rounded up to a block multiple. If `backing_file` is non-empty
  // the pool maps that file (created if absent) and contents survive process
  // restart; otherwise the mapping is anonymous.
  explicit PmemPool(uint64_t size, NvmConfig cfg = {},
                    const std::string& backing_file = "");
  ~PmemPool();

  PmemPool(const PmemPool&) = delete;
  PmemPool& operator=(const PmemPool&) = delete;

  char* base() const { return base_; }
  uint64_t size() const { return size_; }
  // True if a backing file already existed with our magic (restart path).
  bool recovered() const { return recovered_; }

  template <typename T>
  T* to_ptr(uint64_t off) const {
    return reinterpret_cast<T*>(base_ + off);
  }
  uint64_t to_off(const void* p) const {
    return static_cast<uint64_t>(static_cast<const char*>(p) - base_);
  }
  bool contains(const void* p) const {
    const char* c = static_cast<const char*>(p);
    return c >= base_ && c < base_ + size_;
  }

  const NvmConfig& config() const { return cfg_; }
  void set_emulate_latency(bool on) { cfg_.emulate_latency = on; }
  void set_latency_scale(double s) { cfg_.latency_scale = s; }

  // ---- DIMM model ---------------------------------------------------------

  // Emulated DIMM count (1 = flat legacy device).
  uint32_t dimm_count() const { return cfg_.dimm.dimms; }

  // The DIMM owning pool offset `off` under the configured layout:
  // interleaved stripes of interleave_bytes, or contiguous per-DIMM slices
  // when interleave_bytes == 0. Always 0 on the flat model.
  uint32_t dimm_of(uint64_t off) const {
    const DimmConfig& d = cfg_.dimm;
    if (d.dimms <= 1) return 0;
    if (d.interleave_bytes != 0) {
      return static_cast<uint32_t>((off / d.interleave_bytes) % d.dimms);
    }
    const uint32_t s = static_cast<uint32_t>(off / dimm_slice_bytes_);
    return s < d.dimms ? s : d.dimms - 1;
  }

  // ---- access annotations ----------------------------------------------

  // A media read of [p, p+len). Charges one block cost per distinct 256 B
  // block touched (AEP read amplification) and counts it. A block covered
  // by an earlier prefetch_block() on this thread only pays the remainder
  // of its in-flight latency (see charge_read_latency).
  void on_read(const void* p, uint64_t len) {
    auto& c = Stats::local();
    c.nvm_read_ops++;
    const uint64_t blocks = span_units(p, len, kNvmBlock);
    c.nvm_read_blocks += blocks;
    charge_read_latency(p, len, blocks, c);
    if (cfg_.dimm.dimms > 1) account_dimm(p, len, kNvmBlock, false, c);
  }

  // Issue an asynchronous media read-ahead of the blocks covering
  // [p, p+len) — the emulator's stand-in for the memory-level parallelism a
  // batched read path gets from real hardware. Models the device's read
  // buffer: each block is recorded per-thread as in flight with a
  // completion deadline of now + one block latency; the matching on_read()
  // then charges only the not-yet-elapsed remainder, so a window of K
  // independent prefetched reads costs ~one block latency instead of K.
  // Charges NO read traffic (nvm_read_ops/nvm_read_blocks are counted by
  // on_read as always — pipelining overlaps latency, it must not change
  // traffic) and also issues real CPU prefetches for the covered lines.
  void prefetch_block(const void* p, uint64_t len);

  // Accounting-only annotation of a store range (durability cost is charged
  // at persist time, mirroring ADR semantics).
  void on_write(const void* p, uint64_t len) {
    (void)p;
    (void)len;
    Stats::local().nvm_write_ops++;
  }

  // CLWB every cacheline of [p, p+len). Does NOT order stores — call fence().
  void persist(const void* p, uint64_t len);

  // SFENCE.
  void fence() {
    if (FaultPlan* plan = fault_plan_.load(std::memory_order_acquire)) {
      fault_event(plan, kFaultFence, nullptr, 0);
    }
    std::atomic_thread_fence(std::memory_order_seq_cst);
    auto& c = Stats::local();
    c.fences++;
    if (cfg_.emulate_latency) {
      spin_for_ns(static_cast<uint64_t>(
          static_cast<double>(cfg_.fence_ns) * cfg_.latency_scale));
    }
  }

  void persist_fence(const void* p, uint64_t len) {
    persist(p, len);
    fence();
  }

  // A lock word read-modify-write inside NVM (CCEH segment locks, Level
  // hashing bucket locks). The HDNH paper's concurrency claim is that
  // read-lock acquire/release on in-NVM lock words burns NVM WRITE
  // bandwidth: the word itself is usually cache-resident (so no media
  // read), but every ownership change dirties the line and its writeback
  // consumes the module's scarce write bandwidth. We charge one line write
  // per RMW — a cost the baselines pay and HDNH's DRAM-resident lock state
  // does not.
  void on_lock_rmw(const void* p) {
    auto& c = Stats::local();
    c.nvm_write_ops++;
    c.nvm_write_lines++;
    if (cfg_.emulate_latency) {
      spin_for_ns(static_cast<uint64_t>(
          static_cast<double>(cfg_.write_ns_per_line) * cfg_.latency_scale));
    }
    if (cfg_.dimm.dimms > 1 && contains(p)) account_dimm(p, 1, kCacheLine, true, c);
  }

  // ---- crash simulation --------------------------------------------------

  // Start tracking persisted state: media image := current live contents.
  void enable_crash_sim();
  void disable_crash_sim();
  bool crash_sim_enabled() const { return shadow_ != nullptr; }

  // Model the cache spontaneously evicting `n` random dirty lines (legal on
  // real hardware at any time): copies n random live cachelines to media.
  void evict_random_lines(uint64_t n, uint64_t seed);

  // Power loss: live contents := media image. Tracking stays enabled and the
  // media image is untouched, so recovery work is itself tracked.
  void simulate_crash();

  // ---- crash-point fault injection (nvm/fault.h) -------------------------

  // Arm `plan` (not owned; must outlive the arming) so every subsequent
  // durability event is counted against it — and, at plan->crash_at, the
  // pool crashes and throws InjectedCrash. nullptr disarms. Requires crash
  // sim to be enabled before the plan can fire. Arm/disarm from a quiescent
  // point; counting itself is thread-safe.
  void set_fault_plan(FaultPlan* plan) {
    fault_plan_.store(plan, std::memory_order_release);
  }
  FaultPlan* fault_plan() const {
    return fault_plan_.load(std::memory_order_acquire);
  }

 private:
  // The armed plan's event hook, called at the entry of persist()/fence()
  // BEFORE the durable action: crash point k means "event k never reached
  // media". Throws InjectedCrash when the plan fires.
  void fault_event(FaultPlan* plan, uint32_t kind, const void* p,
                   uint64_t len);
  // Latency (not traffic) accounting of a read, prefetch-window aware:
  // blocks found in the calling thread's prefetch window count as
  // overlapped and spin only until their in-flight deadline; cold blocks
  // count as stalled and spin the full block latency.
  void charge_read_latency(const void* p, uint64_t len, uint64_t blocks,
                           Stats::Counters& c);
  // DIMM attribution + token bucket for an access of [p, p+len): splits the
  // range at stripe boundaries, counts whole media units (`unit` = 64 for
  // writes, 256 for reads) against each owning DIMM, and — when the
  // matching bandwidth cap is set and latency emulation is on — charges
  // token-bucket stall time to the calling thread. Never touches the flat
  // traffic counters; only called when dimms > 1.
  void account_dimm(const void* p, uint64_t len, uint64_t unit, bool write,
                    Stats::Counters& c);
  void charge_dimm_bandwidth(uint32_t dimm, uint64_t bytes, uint64_t mbps,
                             bool write, Stats::Counters& c);

  static uint64_t span_units(const void* p, uint64_t len, uint64_t unit) {
    const uint64_t a = reinterpret_cast<uint64_t>(p);
    const uint64_t first = a / unit;
    const uint64_t last = (a + (len ? len - 1 : 0)) / unit;
    return last - first + 1;
  }

  // Virtual completion horizon of one emulated DIMM: the token bucket's
  // "busy until" timestamp. A request arriving at `now` starts service at
  // max(now, busy_until) and pushes the horizon by its service time; the
  // gap is the stall the requesting thread spins out. Cacheline-aligned so
  // independent DIMMs never false-share.
  struct alignas(kCacheLine) DimmState {
    std::atomic<uint64_t> busy_until_ns{0};
  };

  NvmConfig cfg_;
  uint64_t size_ = 0;
  uint64_t dimm_slice_bytes_ = 0;  // slice layout only (interleave_bytes == 0)
  char* base_ = nullptr;
  char* shadow_ = nullptr;  // media image when crash sim is on
  std::atomic<FaultPlan*> fault_plan_{nullptr};
  DimmState dimm_state_[kMaxDimms];
  int fd_ = -1;
  bool recovered_ = false;
};

}  // namespace hdnh::nvm
