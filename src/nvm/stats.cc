#include "nvm/stats.h"

#include <memory>

namespace hdnh::nvm {

struct Stats::Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<Counters>> blocks;
  // Raw aggregate captured by the last reset(); snapshot() subtracts it.
  // Guarded by mu. Counters only grow, so raw - baseline never underflows
  // (up to the long-documented benign raciness of the nonatomic per-thread
  // increments, which tearing-free uint64 loads keep transient).
  StatsSnapshot baseline;
};

Stats::Registry& Stats::registry() {
  static Registry* r = new Registry();  // leaked: outlives all threads
  return *r;
}

Stats::Counters& Stats::local() {
  thread_local Counters* block = [] {
    auto owned = std::make_unique<Counters>();
    Counters* raw = owned.get();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.blocks.push_back(std::move(owned));
    return raw;
  }();
  return *block;
}

StatsSnapshot Stats::raw_aggregate_locked() {
  StatsSnapshot s;
  for (const auto& b : registry().blocks) {
    s.nvm_read_ops += b->nvm_read_ops;
    s.nvm_read_blocks += b->nvm_read_blocks;
    s.nvm_write_ops += b->nvm_write_ops;
    s.nvm_write_lines += b->nvm_write_lines;
    s.fences += b->fences;
    s.dram_hot_hits += b->dram_hot_hits;
    s.ocf_filtered += b->ocf_filtered;
    s.ocf_false_positive += b->ocf_false_positive;
    s.lock_waits += b->lock_waits;
    s.nvm_prefetch_issued += b->nvm_prefetch_issued;
    s.nvm_read_blocks_overlapped += b->nvm_read_blocks_overlapped;
    s.nvm_read_blocks_stalled += b->nvm_read_blocks_stalled;
    s.fault_events += b->fault_events;
    s.fault_crashes += b->fault_crashes;
    for (uint32_t d = 0; d < kMaxDimms; ++d) {
      s.nvm_dimm_read_bytes[d] += b->nvm_dimm_read_bytes[d];
      s.nvm_dimm_write_bytes[d] += b->nvm_dimm_write_bytes[d];
      s.nvm_dimm_read_stall_ns[d] += b->nvm_dimm_read_stall_ns[d];
      s.nvm_dimm_write_stall_ns[d] += b->nvm_dimm_write_stall_ns[d];
      s.nvm_dimm_queue_depth[d] += b->nvm_dimm_queue_depth[d];
    }
    s.alloc_chunks_claimed += b->alloc_chunks_claimed;
    s.alloc_chunk_bytes += b->alloc_chunk_bytes;
    s.alloc_shared_fallbacks += b->alloc_shared_fallbacks;
  }
  return s;
}

StatsSnapshot Stats::snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  StatsSnapshot s = raw_aggregate_locked();
  s -= r.baseline;
  return s;
}

void Stats::reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.baseline = raw_aggregate_locked();
}

}  // namespace hdnh::nvm
